"""The full SRM mergesort driver (paper §2.2, §9.1).

Pipeline: run formation (one pass) followed by ``ceil(log_R(runs))``
merge passes, each merging groups of up to ``R = merge_order`` runs.
Every pass reads each record once and writes it once; SRM's writes are
perfectly parallel and its reads carry the occupancy overhead ``v``
that the paper analyzes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..disks.counters import IOStats
from ..disks.files import StripedFile, StripedRun
from ..disks.system import ParallelDiskSystem
from ..disks.timing import DiskTimingModel
from ..errors import ConfigError
from ..rng import RngLike, ensure_rng
from ..telemetry import TELEMETRY_OFF
from ..telemetry.schema import SPAN_MERGE_PASS, SPAN_RUN_FORMATION, SPAN_SORT
from .config import OverlapConfig, SRMConfig
from .events import OverlapReport
from .layout import LayoutStrategy, choose_start_disks
from .merge import merge_runs
from .run_formation import form_runs_load_sort, form_runs_replacement_selection
from .schedule import ScheduleStats


@dataclass(frozen=True, slots=True)
class PassStats:
    """I/O accounting of one merge pass."""

    pass_index: int
    n_merges: int
    n_runs_in: int
    n_runs_out: int
    parallel_reads: int
    parallel_writes: int
    flush_ops: int
    blocks_flushed: int

    @property
    def parallel_ios(self) -> int:
        return self.parallel_reads + self.parallel_writes


@dataclass
class SortResult:
    """Outcome of a full external sort."""

    output: StripedRun
    config: SRMConfig
    n_records: int
    runs_formed: int
    passes: list[PassStats] = field(default_factory=list)
    io: IOStats | None = None
    merge_schedules: list[ScheduleStats] = field(default_factory=list)
    #: Per-merge simulated-time reports when an overlap engine ran.
    overlap_reports: list[OverlapReport] = field(default_factory=list)
    #: Total internal-merge heap pops across all merges (block-granular
    #: consumption keeps this near the block count, not the record count).
    heap_cycles: int = 0
    #: The disk system the sort ran on (set by srm_sort / srm_mergesort)
    #: so peek helpers can default to it.
    system: ParallelDiskSystem | None = None

    @property
    def n_merge_passes(self) -> int:
        return len(self.passes)

    @property
    def simulated_merge_ms(self) -> float:
        """Summed simulated wall-clock of all engine-driven merges."""
        return sum(r.makespan_ms for r in self.overlap_reports)

    @property
    def total_parallel_ios(self) -> int:
        return self.io.parallel_ios if self.io is not None else 0

    def _system(self, system: ParallelDiskSystem | None) -> ParallelDiskSystem:
        sys = system if system is not None else self.system
        if sys is None:
            raise ConfigError("no disk system attached; pass one explicitly")
        return sys

    def peek_sorted(self, system: ParallelDiskSystem | None = None) -> np.ndarray:
        """Read the sorted output without charging I/O (verification aid)."""
        sys = self._system(system)
        # peek() resolves degraded-mode remaps, so the output reads
        # back correctly even after a disk death relocated blocks.
        parts = [sys.peek(a).keys for a in self.output.addresses]
        return np.concatenate(parts)

    def peek_sorted_records(
        self, system: ParallelDiskSystem | None = None
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Read sorted keys and payloads without charging I/O."""
        sys = self._system(system)
        blocks = [sys.peek(a) for a in self.output.addresses]
        keys = np.concatenate([b.keys for b in blocks])
        if blocks[0].payloads is None:
            return keys, None
        return keys, np.concatenate([b.payloads for b in blocks])


def run_merge_passes(
    system: ParallelDiskSystem,
    runs: list[StripedRun],
    config: SRMConfig,
    result: SortResult,
    strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
    rng: RngLike = None,
    validate: bool = False,
    prefetch: bool = False,
    overlap: OverlapConfig | None = None,
    timing: DiskTimingModel | None = None,
    merger: str = "auto",
    telemetry=None,
    next_run_id: int | None = None,
    merge_workers: int | None = None,
) -> StripedRun:
    """Merge *runs* down to a single run with ``ceil(log_R)`` passes.

    The shared back half of every external sort in this repo: the SRM
    driver calls it after run formation, and each cluster node calls it
    on the runs it received from the exchange phase.  Pass accounting
    (``PassStats``, schedules, heap cycles, overlap reports) accumulates
    into *result*; the final single run is returned.  A one-run input
    returns immediately with no I/O.

    ``merge_workers`` > 1 routes every merge through the
    process-parallel Merge Path plane
    (:func:`~repro.core.parallel_merge.parallel_merge_runs`) instead of
    the serial data plane — same ParRead/flush schedule, same output,
    W-way multi-core drain.  Incompatible with *overlap*/*prefetch*
    (those pace the serial plane's cycle loop).
    """
    gen = ensure_rng(rng)
    parallel_workers = merge_workers if merge_workers and merge_workers > 1 else None
    if parallel_workers is not None and (overlap is not None or prefetch):
        raise ConfigError(
            "merge_workers > 1 cannot be combined with the overlap engine "
            "or eager prefetch — the parallel plane has no cycle loop to pace"
        )
    if parallel_workers is not None:
        from .parallel_merge import parallel_merge_runs
    tel = telemetry if telemetry is not None else TELEMETRY_OFF
    R = config.merge_order
    if next_run_id is None:
        next_run_id = len(runs)
    pass_index = len(result.passes)
    while len(runs) > 1:
        pass_index += 1
        groups = [runs[i : i + R] for i in range(0, len(runs), R)]
        out_runs: list[StripedRun] = []
        starts = choose_start_disks(len(groups), system.n_disks, strategy, gen)
        pass_span = tel.span(
            SPAN_MERGE_PASS,
            system=system,
            pass_index=pass_index,
            n_runs_in=len(runs),
        )
        reads = writes = flush_ops = blocks_flushed = n_merges = 0
        # On a shared (service) farm the job's own counters live in
        # system.stats_sink; bracketing the per-merge delta there keeps
        # PassStats clean of other tenants' interleaved rounds.
        acct = getattr(system, "stats_sink", None) or system.stats
        for g, group in enumerate(groups):
            if len(group) == 1:
                # A leftover run passes through untouched (no I/O).
                out_runs.append(group[0])
                continue
            before = acct.snapshot()
            if parallel_workers is not None:
                mres = parallel_merge_runs(
                    system,
                    group,
                    output_run_id=next_run_id,
                    output_start_disk=int(starts[g]),
                    workers=parallel_workers,
                    validate=validate,
                    telemetry=telemetry,
                )
            else:
                mres = merge_runs(
                    system,
                    group,
                    output_run_id=next_run_id,
                    output_start_disk=int(starts[g]),
                    validate=validate,
                    prefetch=prefetch,
                    overlap=overlap,
                    timing=timing,
                    merger=merger,
                    telemetry=telemetry,
                )
            next_run_id += 1
            delta = acct.since(before)
            reads += delta.parallel_reads
            writes += delta.parallel_writes
            flush_ops += mres.schedule.flush_ops
            blocks_flushed += mres.schedule.blocks_flushed
            n_merges += 1
            result.merge_schedules.append(mres.schedule)
            result.heap_cycles += mres.heap_cycles
            if mres.overlap is not None:
                result.overlap_reports.append(mres.overlap)
            out_runs.append(mres.output)
        pass_span.set(
            n_merges=n_merges,
            n_runs_out=len(out_runs),
            flush_ops=flush_ops,
            blocks_flushed=blocks_flushed,
        )
        pass_span.close()
        result.passes.append(
            PassStats(
                pass_index=pass_index,
                n_merges=n_merges,
                n_runs_in=len(runs),
                n_runs_out=len(out_runs),
                parallel_reads=reads,
                parallel_writes=writes,
                flush_ops=flush_ops,
                blocks_flushed=blocks_flushed,
            )
        )
        runs = out_runs
    return runs[0]


def srm_mergesort(
    system: ParallelDiskSystem,
    infile: StripedFile,
    config: SRMConfig,
    strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
    rng: RngLike = None,
    validate: bool = False,
    prefetch: bool = False,
    run_length: int | None = None,
    formation: str = "load_sort",
    overlap: OverlapConfig | None = None,
    timing: DiskTimingModel | None = None,
    merger: str = "auto",
    telemetry=None,
    merge_workers: int | None = None,
) -> SortResult:
    """Sort *infile* on *system* with SRM; returns the sorted run + stats.

    Parameters
    ----------
    config:
        Merge order and geometry; must match the system's ``D`` and ``B``.
    strategy:
        Start-disk policy for runs (the paper's SRM is ``RANDOMIZED``).
    rng:
        Randomness source for run placement.
    run_length:
        Records per initial run (default: the configuration's full
        memory, ``config.memory_records``).
    formation:
        ``"load_sort"`` or ``"replacement_selection"``.
    overlap:
        Drive every merge through the discrete-event overlap engine;
        per-merge :class:`OverlapReport`\\ s land in
        ``SortResult.overlap_reports``.  Does not change the sorted
        output or the I/O counts in ``overlap.mode == "none"``.
    timing:
        Disk service-time model for the engine (default
        :data:`~repro.disks.timing.DISK_1996`).
    merger:
        Internal-merge implementation for every merge step (see
        :func:`~repro.core.merge.merge_runs`): ``"auto"``/``"losertree"``
        for the vectorized data plane, ``"heapq"`` for the reference
        loop.  All produce identical I/O and output.
    telemetry:
        A :class:`~repro.telemetry.Telemetry` instance; the sort runs
        inside a ``sort`` span enclosing a ``run_formation`` span and
        one ``merge_pass`` span per pass (each merge adds its own
        ``merge`` span).  ``None`` uses the zero-overhead null layer.
    """
    if config.n_disks != system.n_disks or config.block_size != system.block_size:
        raise ConfigError("config geometry does not match the disk system")
    if infile.n_records == 0:
        raise ConfigError("cannot sort an empty file")
    gen = ensure_rng(rng)
    tel = telemetry if telemetry is not None else TELEMETRY_OFF
    start_stats = system.stats.snapshot()
    length = run_length if run_length is not None else config.memory_records

    sort_span = tel.span(
        SPAN_SORT,
        system=system,
        n_records=infile.n_records,
        n_disks=system.n_disks,
        block_size=system.block_size,
        merge_order=config.merge_order,
        formation=formation,
    )
    rf_span = tel.span(
        SPAN_RUN_FORMATION, system=system, run_length=length
    )
    if formation == "load_sort":
        runs = form_runs_load_sort(
            system, infile, length, strategy, gen, telemetry=telemetry
        )
    elif formation == "replacement_selection":
        runs = form_runs_replacement_selection(
            system, infile, length, strategy, gen, telemetry=telemetry
        )
    else:
        raise ConfigError(f"unknown formation method {formation!r}")
    rf_span.set(runs_formed=len(runs))
    rf_span.close()

    result = SortResult(
        output=runs[0],  # placeholder; replaced below
        config=config,
        n_records=infile.n_records,
        runs_formed=len(runs),
    )

    result.output = run_merge_passes(
        system,
        runs,
        config,
        result,
        strategy=strategy,
        rng=gen,
        validate=validate,
        prefetch=prefetch,
        overlap=overlap,
        timing=timing,
        merger=merger,
        telemetry=telemetry,
        merge_workers=merge_workers,
    )
    if system.faults is not None and system.faults.plan.torn_write_p > 0.0:
        # Final-pass blocks are never re-read through the fault-aware
        # path, so a tear in the output run would otherwise reach the
        # caller undetected.  One charged scrub pass re-verifies every
        # output seal and repairs stale ones from parity.
        from ..faults.degraded import scrub_addresses

        scrub_addresses(system, result.output.addresses)
    result.io = system.stats.since(start_stats)
    result.system = system
    sort_span.set(
        runs_formed=result.runs_formed,
        n_merge_passes=result.n_merge_passes,
        heap_cycles=result.heap_cycles,
    )
    _record_backend_stats(tel, sort_span, system)
    sort_span.close()
    return result


def _record_backend_stats(tel, sort_span, system: ParallelDiskSystem) -> None:
    """Publish storage-backend counters (``backend.*``) at sort end.

    Counters accumulate across sorts sharing a registry (like every
    other counter); the sort span additionally carries this system's
    absolute numbers.  The in-memory backend reports no counters.
    """
    stats = system.backend.stats()
    if stats.get("kind") == "memory":
        return
    from ..telemetry.schema import (
        BACKEND_BLOCKS_READ,
        BACKEND_BLOCKS_WRITTEN,
        BACKEND_BYTES_READ,
        BACKEND_BYTES_WRITTEN,
        BACKEND_FILE_BYTES,
        BACKEND_FILE_GROWS,
    )

    tel.counter(BACKEND_BLOCKS_WRITTEN).inc(stats.get("blocks_written", 0))
    tel.counter(BACKEND_BLOCKS_READ).inc(stats.get("blocks_read", 0))
    tel.counter(BACKEND_BYTES_WRITTEN).inc(stats.get("bytes_written", 0))
    tel.counter(BACKEND_BYTES_READ).inc(stats.get("bytes_read", 0))
    tel.counter(BACKEND_FILE_GROWS).inc(stats.get("file_grows", 0))
    tel.gauge(BACKEND_FILE_BYTES).set(stats.get("file_bytes", 0))
    sort_span.set(
        backend=stats["kind"],
        backend_file_bytes=stats.get("file_bytes", 0),
        backend_blocks_written=stats.get("blocks_written", 0),
        backend_blocks_read=stats.get("blocks_read", 0),
    )


def sort_records_on_system(
    system: ParallelDiskSystem,
    keys: np.ndarray,
    config: SRMConfig,
    strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
    rng: RngLike = None,
    validate: bool = False,
    run_length: int | None = None,
    formation: str = "load_sort",
    payloads: np.ndarray | None = None,
    overlap: OverlapConfig | None = None,
    timing: DiskTimingModel | None = None,
    merger: str = "auto",
    telemetry=None,
    merge_workers: int | None = None,
) -> SortResult:
    """Install *keys* as an input file on *system* and sort them.

    The single-job driver refactored out of :func:`srm_sort` so that it
    can run against a system the caller owns — in particular the
    multi-tenant service's *shared* farm, where many of these drivers
    interleave one parallel-I/O round at a time (gated through
    ``system.round_hook``).  Input installation charges no I/O; all
    accounting starts at the first ``ParRead``.
    """
    keys = np.asarray(keys, dtype=np.int64)
    infile = StripedFile.from_records(system, keys, payloads=payloads)
    return srm_mergesort(
        system,
        infile,
        config,
        strategy=strategy,
        rng=rng,
        validate=validate,
        run_length=run_length,
        formation=formation,
        overlap=overlap,
        timing=timing,
        merger=merger,
        telemetry=telemetry,
        merge_workers=merge_workers,
    )


def srm_sort(
    keys: np.ndarray,
    config: SRMConfig,
    strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
    rng: RngLike = None,
    validate: bool = False,
    run_length: int | None = None,
    formation: str = "load_sort",
    payloads: np.ndarray | None = None,
    overlap: OverlapConfig | None = None,
    timing: DiskTimingModel | None = None,
    merger: str = "auto",
    telemetry=None,
    faults=None,
    backend=None,
    merge_workers: int | None = None,
) -> tuple[np.ndarray, SortResult]:
    """Convenience: sort a key array on a fresh simulated disk system.

    Returns the sorted array (read back without charging I/O) and the
    :class:`SortResult` with all accounting.  When *payloads* are given
    they travel with their keys; fetch them via
    :meth:`SortResult.peek_sorted_records`.  *faults* — a
    :class:`~repro.faults.plan.FaultPlan` — arms deterministic fault
    injection on the fresh system before any block is placed.
    *backend* selects the block-storage backend of the fresh system
    (see :mod:`repro.disks.backends`); ``"mmap"`` keeps the data on
    disk files so inputs can exceed RAM.  *merge_workers* > 1 drains
    every merge through the process-parallel Merge Path plane
    (:mod:`repro.core.parallel_merge`; requires the mmap backend).
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return keys.copy(), None  # type: ignore[return-value]
    system = ParallelDiskSystem(config.n_disks, config.block_size, backend=backend)
    if faults is not None:
        system.attach_faults(faults, telemetry=telemetry)
    collector = getattr(telemetry, "trace", None)
    demand_tracer = None
    if collector is not None and overlap is None:
        # Demand-paced sorts advance one serial system clock; arm it
        # (and a timing model, without which it never moves) so the
        # trace tiles [0, elapsed_ms] on the channel lane.
        from ..disks.timing import DISK_1996
        from ..telemetry.trace import SystemTracer

        if system.timing is None:
            system.timing = timing if timing is not None else DISK_1996
        demand_tracer = SystemTracer(collector, collector.new_domain("demand"))
        system.tracer = demand_tracer
    result = sort_records_on_system(
        system,
        keys,
        config,
        strategy=strategy,
        rng=rng,
        validate=validate,
        run_length=run_length,
        formation=formation,
        payloads=payloads,
        overlap=overlap,
        timing=timing,
        merger=merger,
        telemetry=telemetry,
        merge_workers=merge_workers,
    )
    if demand_tracer is not None:
        demand_tracer.finish(system.elapsed_ms)
    return result.peek_sorted(system), result
