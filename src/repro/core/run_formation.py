"""Initial run formation (paper §2.1).

Two classical methods are provided:

* **Memory-load sort** — read ``M`` records with full read parallelism,
  sort internally, write one striped run; repeat.  Produces
  ``ceil(N/M)`` runs of length ``M`` (the paper's formula baseline).
* **Replacement selection** — a heap of ``M`` records streams input to
  output, starting a new run only when the incoming record is smaller
  than the last one written; random inputs yield runs of expected
  length ``2M`` (Knuth), i.e. roughly half as many runs.

Replacement selection ships two engines that produce *identical* runs:

* ``engine="block"`` (default) — block-granular: each refilled input
  block is classified against the next ``m`` pending emissions with one
  vectorized compare (current epoch vs. next epoch), the emissions leave
  as one array slice, and accepted records merge back array-at-a-time.
  A per-record fallback handles the rare steps where an accepted record
  would itself be emitted inside the same block or the epoch flips
  mid-block, so the output is exactly the classical algorithm's.
* ``engine="record"`` — the textbook per-record heap loop, kept as the
  reference oracle for tests and the benchmark baseline.

Both charge realistic I/O: input blocks are read stripe-parallel and
runs are written with perfect write parallelism in forecast format.
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

from ..disks.files import StripedFile, StripedRun
from ..disks.system import ParallelDiskSystem
from ..errors import ConfigError, DataError
from ..rng import RngLike, ensure_rng
from ..telemetry import TELEMETRY_OFF
from ..telemetry.schema import H_RUN_LENGTH, run_length_edges
from .layout import LayoutStrategy, choose_start_disks

#: Recognized replacement-selection engines.
RS_ENGINES = ("block", "record")


def _start_disk_stream(
    n_disks: int, strategy: LayoutStrategy, rng: RngLike
) -> Iterator[int]:
    """Unbounded stream of run start disks under *strategy*."""
    gen = ensure_rng(rng)
    i = 0
    while True:
        if strategy is LayoutStrategy.RANDOMIZED:
            yield int(gen.integers(0, n_disks))
        elif strategy is LayoutStrategy.WORST_CASE:
            yield 0
        else:  # STAGGERED / ROUND_ROBIN degenerate to cycling at stream time
            yield i % n_disks
        i += 1


def form_runs_load_sort(
    system: ParallelDiskSystem,
    infile: StripedFile,
    run_length: int,
    strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
    rng: RngLike = None,
    first_run_id: int = 0,
    free_input: bool = True,
    telemetry=None,
) -> list[StripedRun]:
    """One pass of memory-load run formation.

    Reads ``run_length``-record loads of *infile* (block-aligned; the
    run length is rounded down to a whole number of blocks), sorts each
    in memory, and writes it as a striped forecast-format run.
    """
    B = system.block_size
    blocks_per_run = max(1, run_length // B)
    if run_length < B:
        raise ConfigError(
            f"run length {run_length} is smaller than one block (B={B})"
        )
    if infile.n_records == 0:
        return []
    n_runs = -(-infile.n_blocks // blocks_per_run)
    starts = choose_start_disks(n_runs, system.n_disks, strategy, rng)
    tel = telemetry if telemetry is not None else TELEMETRY_OFF
    h_len = tel.histogram(H_RUN_LENGTH, run_length_edges(run_length))
    runs: list[StripedRun] = []
    for i in range(n_runs):
        chunk = infile.addresses[i * blocks_per_run : (i + 1) * blocks_per_run]
        blocks, _ = system.read_batch(chunk)
        keys = np.concatenate([b.keys for b in blocks])
        if blocks[0].payloads is not None:
            payloads = np.concatenate([b.payloads for b in blocks])
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            payloads = payloads[order]
        else:
            payloads = None
            keys.sort(kind="stable")
        if free_input:
            for addr in chunk:
                system.free(addr)
        h_len.observe(keys.size)
        runs.append(
            StripedRun.from_sorted_keys(
                system,
                keys,
                run_id=first_run_id + i,
                start_disk=int(starts[i]),
                payloads=payloads,
            )
        )
    return runs


def form_runs_replacement_selection(
    system: ParallelDiskSystem,
    infile: StripedFile,
    memory_records: int,
    strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
    rng: RngLike = None,
    first_run_id: int = 0,
    free_input: bool = True,
    engine: str = "block",
    telemetry=None,
) -> list[StripedRun]:
    """One pass of replacement-selection run formation.

    A memory of up to ``memory_records`` records streams input to
    output; each output record is replaced by the next input record,
    tagged with the *next* run's epoch if it is smaller than the last
    record written (it can no longer join the current run).  Random
    inputs give expected run length ``2·memory_records``.

    *engine* selects the implementation: ``"block"`` (vectorized,
    block-granular — the default) or ``"record"`` (the per-record heap
    oracle).  Both emit byte-identical runs and charge identical I/O.
    """
    if memory_records < 1:
        raise ConfigError(f"memory must hold at least 1 record, got {memory_records}")
    if engine not in RS_ENGINES:
        raise ConfigError(f"engine must be one of {RS_ENGINES}, got {engine!r}")
    if infile.n_records == 0:
        return []
    disk_stream = _start_disk_stream(system.n_disks, strategy, rng)
    if engine == "record":
        runs = _replacement_selection_record(
            system, infile, memory_records, disk_stream, first_run_id, free_input
        )
    else:
        runs = _BlockReplacementSelection(
            system, infile, memory_records, disk_stream, first_run_id, free_input
        ).run()
    total = sum(r.n_records for r in runs)
    if total != infile.n_records:
        raise DataError(
            f"replacement selection emitted {total} of {infile.n_records} records"
        )
    tel = telemetry if telemetry is not None else TELEMETRY_OFF
    h_len = tel.histogram(H_RUN_LENGTH, run_length_edges(memory_records))
    for r in runs:
        h_len.observe(r.n_records)
    return runs


def _chunk_reader(system: ParallelDiskSystem, infile: StripedFile, free_input: bool):
    """Stripe-parallel input reader: ``D`` blocks per refill."""
    addr_pos = 0

    def refill() -> tuple[np.ndarray, np.ndarray | None] | None:
        nonlocal addr_pos
        if addr_pos >= infile.n_blocks:
            return None
        chunk = infile.addresses[addr_pos : addr_pos + system.n_disks]
        blocks, _ = system.read_batch(chunk)
        if free_input:
            for addr in chunk:
                system.free(addr)
        addr_pos += len(chunk)
        keys = np.concatenate([b.keys for b in blocks])
        if blocks[0].payloads is None:
            return keys, None
        return keys, np.concatenate([b.payloads for b in blocks])

    return refill


def _replacement_selection_record(
    system: ParallelDiskSystem,
    infile: StripedFile,
    memory_records: int,
    disk_stream: Iterator[int],
    first_run_id: int,
    free_input: bool,
) -> list[StripedRun]:
    """The textbook per-record loop — the reference oracle."""
    refill = _chunk_reader(system, infile, free_input)
    buf = refill()
    buf_pos = 0
    has_payloads = buf is not None and buf[1] is not None

    def next_record() -> tuple[int, int] | None:
        nonlocal buf, buf_pos
        if buf is None:
            return None
        if buf_pos >= buf[0].size:
            buf = refill()
            buf_pos = 0
            if buf is None:
                return None
        keys, pays = buf
        v = int(keys[buf_pos])
        p = int(pays[buf_pos]) if pays is not None else 0
        buf_pos += 1
        return v, p

    # Heap of (epoch, key, arrival-sequence, payload); the sequence
    # breaks (epoch, key) ties FIFO.
    heap: list[tuple[int, int, int, int]] = []
    seq = 0
    while len(heap) < memory_records:
        rec = next_record()
        if rec is None:
            break
        heap.append((0, rec[0], seq, rec[1]))
        seq += 1
    heapq.heapify(heap)

    runs: list[StripedRun] = []
    run_id = first_run_id
    current_epoch = 0
    out: list[int] = []
    out_pay: list[int] = []

    def close_run() -> None:
        nonlocal out, out_pay, run_id
        if not out:
            return
        runs.append(
            StripedRun.from_sorted_keys(
                system,
                np.asarray(out, dtype=np.int64),
                run_id=run_id,
                start_disk=next(disk_stream),
                payloads=np.asarray(out_pay, dtype=np.int64) if has_payloads else None,
            )
        )
        run_id += 1
        out = []
        out_pay = []

    while heap:
        epoch, key, _, payload = heapq.heappop(heap)
        if epoch != current_epoch:
            close_run()
            current_epoch = epoch
        out.append(key)
        out_pay.append(payload)
        rec = next_record()
        if rec is not None:
            v, p = rec
            heapq.heappush(
                heap, (current_epoch if v >= key else current_epoch + 1, v, seq, p)
            )
            seq += 1
    close_run()
    return runs


#: Blocks at or below this size replay per-record when the vectorized
#: step cannot apply (interference / epoch flip); larger blocks bisect.
_LEAF = 32


class _BlockReplacementSelection:
    """Block-granular replacement selection (exact oracle equivalent).

    The current epoch's memory is held as two sorted-by-``(key,
    arrival)`` arrays: the *current pool* (``cur``, the initial fill
    plus periodically folded-in arrivals) and the *accepted side-array*
    (``acc``, records accepted since the last fold; everything in
    ``acc`` arrived after everything in ``cur``).  The next epoch
    accumulates in arrival order and is stably sorted once per run
    boundary.

    While input remains, every arriving record pairs with exactly one
    emission, so an arriving block of ``m`` records pairs with the next
    ``m`` emissions — the ``m`` smallest of ``cur ∪ acc``, obtained by
    one stable argsort of two ``m``-slices.  When none of the block's
    accepted records sorts strictly below the ``m``-th of those
    emissions (the common case: that requires landing among the ``m``
    smallest of ``M`` resident records), the whole block commits
    vectorized: emissions leave as array slices, accepted records merge
    into ``acc`` with one ``searchsorted`` + ``insert`` (bounded by the
    fold threshold, not ``M``), and rejects append to the next epoch.
    Otherwise the block *bisects*; only :data:`_LEAF`-sized pieces ever
    replay record-by-record, bit-identically to the heap oracle.
    """

    def __init__(
        self,
        system: ParallelDiskSystem,
        infile: StripedFile,
        memory_records: int,
        disk_stream: Iterator[int],
        first_run_id: int,
        free_input: bool,
    ) -> None:
        self.system = system
        self.memory_records = memory_records
        self.disk_stream = disk_stream
        self.run_id = first_run_id
        self.refill = _chunk_reader(system, infile, free_input)
        self.has_payloads = False
        # Current-epoch pool, sorted by (key, arrival); consumed from ci.
        self.cur_k = np.empty(0, dtype=np.int64)
        self.cur_p: np.ndarray | None = None
        self.ci = 0
        # Accepted side-array (newer than cur), sorted; consumed from ai.
        self.acc_k = np.empty(0, dtype=np.int64)
        self.acc_p: np.ndarray | None = None
        self.ai = 0
        # Fold acc into cur once it outgrows this (amortizes the O(M)
        # merge over many blocks of accepted records).
        self._fold_at = max(
            4 * system.n_disks * system.block_size, memory_records // 4
        )
        # Next-epoch accumulation, in arrival order.
        self.nxt_k: list[np.ndarray] = []
        self.nxt_p: list[np.ndarray] = []
        # Current output run accumulation.
        self.out_k: list[np.ndarray] = []
        self.out_p: list[np.ndarray] = []
        self.runs: list[StripedRun] = []

    # -- run boundaries ---------------------------------------------------

    def _close_run(self) -> None:
        if not self.out_k:
            return
        keys = np.concatenate(self.out_k)
        pays = np.concatenate(self.out_p) if self.has_payloads else None
        self.runs.append(
            StripedRun.from_sorted_keys(
                self.system,
                keys,
                run_id=self.run_id,
                start_disk=next(self.disk_stream),
                payloads=pays,
            )
        )
        self.run_id += 1
        self.out_k = []
        self.out_p = []

    def _promote_next_epoch(self) -> None:
        """Current epoch drained: close the run, promote the next epoch."""
        self._close_run()
        if self.nxt_k:
            keys = np.concatenate(self.nxt_k)
            order = np.argsort(keys, kind="stable")  # arrival order = seq
            self.cur_k = keys[order]
            if self.has_payloads:
                self.cur_p = np.concatenate(self.nxt_p)[order]
            self.nxt_k = []
            self.nxt_p = []
        else:
            self.cur_k = np.empty(0, dtype=np.int64)
            self.cur_p = np.empty(0, dtype=np.int64) if self.has_payloads else None
        self.ci = 0
        self.acc_k = np.empty(0, dtype=np.int64)
        self.acc_p = np.empty(0, dtype=np.int64) if self.has_payloads else None
        self.ai = 0

    # -- pool maintenance -------------------------------------------------

    def _avail(self) -> int:
        """Unconsumed current-epoch records (cur + accepted side-array)."""
        return (self.cur_k.size - self.ci) + (self.acc_k.size - self.ai)

    def _fold(self) -> None:
        """Merge the accepted side-array into the current pool.

        Stable concat order (cur first) keeps the FIFO tie-break: for
        equal keys, older ``cur`` records precede newer ``acc`` ones.
        """
        keys = np.concatenate([self.cur_k[self.ci :], self.acc_k[self.ai :]])
        order = np.argsort(keys, kind="stable")
        self.cur_k = keys[order]
        if self.has_payloads:
            self.cur_p = np.concatenate(
                [self.cur_p[self.ci :], self.acc_p[self.ai :]]
            )[order]
        self.ci = 0
        self.acc_k = np.empty(0, dtype=np.int64)
        self.acc_p = np.empty(0, dtype=np.int64) if self.has_payloads else None
        self.ai = 0

    def _append_accepted(self, keys: np.ndarray, pays: np.ndarray | None) -> None:
        """Merge newly accepted records (sorted by key, arrival) into ``acc``.

        Arrivals are newer than everything pending, so equal keys slot
        *after* existing ones (``side="right"``) — the heap's FIFO
        tie-break.
        """
        rest = self.acc_k[self.ai :]
        pos = np.searchsorted(rest, keys, side="right")
        self.acc_k = np.insert(rest, pos, keys)
        if self.has_payloads:
            self.acc_p = np.insert(self.acc_p[self.ai :], pos, pays)
        self.ai = 0
        if self.acc_k.size > self._fold_at:
            self._fold()

    def _next_emissions(
        self, m: int
    ) -> tuple[np.ndarray, np.ndarray | None, int, int]:
        """The next ``m`` emissions of the current epoch (needs avail >= m).

        Returns ``(keys, payloads, from_cur, from_acc)``.  A stable
        argsort over the two sorted ``m``-slices (cur first) realizes
        the (key, arrival) emission order.
        """
        c = self.cur_k[self.ci : self.ci + m]
        a = self.acc_k[self.ai : self.ai + m]
        if a.size == 0:
            pays = self.cur_p[self.ci : self.ci + m] if self.has_payloads else None
            return c, pays, m, 0
        if c.size == 0:
            pays = self.acc_p[self.ai : self.ai + m] if self.has_payloads else None
            return a, pays, 0, m
        cat = np.concatenate([c, a])
        order = np.argsort(cat, kind="stable")[:m]
        keys = cat[order]
        from_cur = int((order < c.size).sum())
        pays = None
        if self.has_payloads:
            pays = np.concatenate(
                [
                    self.cur_p[self.ci : self.ci + m],
                    self.acc_p[self.ai : self.ai + m],
                ]
            )[order]
        return keys, pays, from_cur, m - from_cur

    # -- block processing -------------------------------------------------

    def _process(self, xk: np.ndarray, xp: np.ndarray | None) -> None:
        """Process an arriving slice: vectorized, bisecting on conflict."""
        m = xk.size
        if m == 0:
            return
        if self._avail() >= m:
            keys, pays, from_cur, from_acc = self._next_emissions(m)
            mask = xk >= keys
            acc_k = xk[mask]
            # Interference: an accepted arrival strictly below the m-th
            # emission would itself be emitted within this slice (an
            # equal key loses the FIFO tie and stays resident).
            if not (acc_k.size and bool((acc_k < keys[-1]).any())):
                self.out_k.append(keys)
                if self.has_payloads:
                    self.out_p.append(pays)
                self.ci += from_cur
                self.ai += from_acc
                if acc_k.size:
                    order = np.argsort(acc_k, kind="stable")
                    self._append_accepted(
                        acc_k[order],
                        xp[mask][order] if self.has_payloads else None,
                    )
                rej = ~mask
                if rej.any():
                    self.nxt_k.append(xk[rej])
                    if self.has_payloads:
                        self.nxt_p.append(xp[rej])
                return
        if m <= _LEAF:
            self._process_leaf(xk, xp)
        else:
            # Bisect: interference is quadratically rarer in half-sized
            # slices, so conflicts narrow down to _LEAF-sized replays.
            h = m // 2
            self._process(xk[:h], None if xp is None else xp[:h])
            self._process(xk[h:], None if xp is None else xp[h:])

    def _process_leaf(self, xk: np.ndarray, xp: np.ndarray | None) -> None:
        """Per-record replay of one leaf (interference / epoch flip)."""
        # Accepted-but-unemitted arrivals from this leaf: a heap of
        # (key, index) — the index doubles as the FIFO tie-break and the
        # payload handle.  On key ties, cur beats acc beats leaf heap
        # (strictly oldest-first, matching the oracle's sequence order).
        heap: list[tuple[int, int]] = []
        emit_k: list[int] = []
        emit_p: list[int] = []

        def flush_emitted() -> None:
            if emit_k:
                self.out_k.append(np.asarray(emit_k, dtype=np.int64))
                if self.has_payloads:
                    self.out_p.append(np.asarray(emit_p, dtype=np.int64))
                emit_k.clear()
                emit_p.clear()

        for i in range(xk.size):
            if self._avail() == 0 and not heap:
                # Current epoch exhausted: run boundary mid-stream.
                flush_emitted()
                self._promote_next_epoch()
            key = None
            src = -1
            if self.ci < self.cur_k.size:
                key = int(self.cur_k[self.ci])
                src = 0
            if self.ai < self.acc_k.size:
                k2 = int(self.acc_k[self.ai])
                if key is None or k2 < key:
                    key, src = k2, 1
            if heap and (key is None or heap[0][0] < key):
                key, src = heap[0][0], 2
            if src == 0:
                pay = int(self.cur_p[self.ci]) if self.has_payloads else 0
                self.ci += 1
            elif src == 1:
                pay = int(self.acc_p[self.ai]) if self.has_payloads else 0
                self.ai += 1
            else:
                key, j = heapq.heappop(heap)
                pay = int(xp[j]) if self.has_payloads else 0
            emit_k.append(key)
            emit_p.append(pay)
            x = int(xk[i])
            if x >= key:
                heapq.heappush(heap, (x, i))
            else:
                self.nxt_k.append(xk[i : i + 1])
                if self.has_payloads:
                    self.nxt_p.append(xp[i : i + 1])
        flush_emitted()
        if heap:
            heap.sort()  # (key, arrival) — already the FIFO merge order
            idx = np.asarray([j for _, j in heap], dtype=np.int64)
            self._append_accepted(
                xk[idx], xp[idx] if self.has_payloads else None
            )

    # -- driver -----------------------------------------------------------

    def run(self) -> list[StripedRun]:
        M = self.memory_records
        # Initial fill: the first M records are epoch 0.
        parts_k: list[np.ndarray] = []
        parts_p: list[np.ndarray] = []
        filled = 0
        carry: tuple[np.ndarray, np.ndarray | None] | None = None
        first = True
        while filled < M:
            chunk = self.refill()
            if chunk is None:
                break
            k, p = chunk
            if first:
                self.has_payloads = p is not None
                if self.has_payloads:
                    self.acc_p = np.empty(0, dtype=np.int64)
                first = False
            need = M - filled
            if k.size <= need:
                parts_k.append(k)
                if p is not None:
                    parts_p.append(p)
                filled += k.size
            else:
                parts_k.append(k[:need])
                if p is not None:
                    parts_p.append(p[:need])
                carry = (k[need:], p[need:] if p is not None else None)
                filled += need
        keys = (
            np.concatenate(parts_k) if parts_k else np.empty(0, dtype=np.int64)
        )
        order = np.argsort(keys, kind="stable")
        self.cur_k = keys[order]
        if self.has_payloads:
            self.cur_p = np.concatenate(parts_p)[order]

        block = carry if carry is not None else self.refill()
        while block is not None:
            self._process(*block)
            block = self.refill()

        # Input exhausted: drain the resident pools.
        self._fold()  # linearize cur + acc into one sorted tail
        if self.cur_k.size:
            self.out_k.append(self.cur_k)
            if self.has_payloads:
                self.out_p.append(self.cur_p)
        self._close_run()
        if self.nxt_k:
            self._promote_next_epoch()  # closes nothing; promotes the tail
            self.out_k.append(self.cur_k)
            if self.has_payloads:
                self.out_p.append(self.cur_p)
            self._close_run()
        return self.runs
