"""Initial run formation (paper §2.1).

Two classical methods are provided:

* **Memory-load sort** — read ``M`` records with full read parallelism,
  sort internally, write one striped run; repeat.  Produces
  ``ceil(N/M)`` runs of length ``M`` (the paper's formula baseline).
* **Replacement selection** — a heap of ``M`` records streams input to
  output, starting a new run only when the incoming record is smaller
  than the last one written; random inputs yield runs of expected
  length ``2M`` (Knuth), i.e. roughly half as many runs.

Both charge realistic I/O: input blocks are read stripe-parallel and
runs are written with perfect write parallelism in forecast format.
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

from ..disks.files import StripedFile, StripedRun
from ..disks.system import ParallelDiskSystem
from ..errors import ConfigError, DataError
from ..rng import RngLike, ensure_rng
from .layout import LayoutStrategy, choose_start_disks


def _start_disk_stream(
    n_disks: int, strategy: LayoutStrategy, rng: RngLike
) -> Iterator[int]:
    """Unbounded stream of run start disks under *strategy*."""
    gen = ensure_rng(rng)
    i = 0
    while True:
        if strategy is LayoutStrategy.RANDOMIZED:
            yield int(gen.integers(0, n_disks))
        elif strategy is LayoutStrategy.WORST_CASE:
            yield 0
        else:  # STAGGERED / ROUND_ROBIN degenerate to cycling at stream time
            yield i % n_disks
        i += 1


def form_runs_load_sort(
    system: ParallelDiskSystem,
    infile: StripedFile,
    run_length: int,
    strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
    rng: RngLike = None,
    first_run_id: int = 0,
    free_input: bool = True,
) -> list[StripedRun]:
    """One pass of memory-load run formation.

    Reads ``run_length``-record loads of *infile* (block-aligned; the
    run length is rounded down to a whole number of blocks), sorts each
    in memory, and writes it as a striped forecast-format run.
    """
    B = system.block_size
    blocks_per_run = max(1, run_length // B)
    if run_length < B:
        raise ConfigError(
            f"run length {run_length} is smaller than one block (B={B})"
        )
    if infile.n_records == 0:
        return []
    n_runs = -(-infile.n_blocks // blocks_per_run)
    starts = choose_start_disks(n_runs, system.n_disks, strategy, rng)
    runs: list[StripedRun] = []
    for i in range(n_runs):
        chunk = infile.addresses[i * blocks_per_run : (i + 1) * blocks_per_run]
        blocks, _ = system.read_batch(chunk)
        keys = np.concatenate([b.keys for b in blocks])
        if blocks[0].payloads is not None:
            payloads = np.concatenate([b.payloads for b in blocks])
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            payloads = payloads[order]
        else:
            payloads = None
            keys.sort(kind="stable")
        if free_input:
            for addr in chunk:
                system.free(addr)
        runs.append(
            StripedRun.from_sorted_keys(
                system,
                keys,
                run_id=first_run_id + i,
                start_disk=int(starts[i]),
                payloads=payloads,
            )
        )
    return runs


def form_runs_replacement_selection(
    system: ParallelDiskSystem,
    infile: StripedFile,
    memory_records: int,
    strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
    rng: RngLike = None,
    first_run_id: int = 0,
    free_input: bool = True,
) -> list[StripedRun]:
    """One pass of replacement-selection run formation.

    A min-heap of up to ``memory_records`` records is kept; each output
    record is replaced by the next input record, tagged with the *next*
    run's epoch if it is smaller than the last record written (it can no
    longer join the current run).  Random inputs give expected run
    length ``2·memory_records``.

    Note: this is a per-record Python loop — intended for tests,
    examples and the run-formation ablation, not for paper-scale ``N``.
    """
    if memory_records < 1:
        raise ConfigError(f"memory must hold at least 1 record, got {memory_records}")
    if infile.n_records == 0:
        return []
    disk_stream = _start_disk_stream(system.n_disks, strategy, rng)

    # Stripe-parallel input reader (keys plus optional payloads).
    addr_pos = 0

    def refill() -> tuple[np.ndarray, np.ndarray | None] | None:
        nonlocal addr_pos
        if addr_pos >= infile.n_blocks:
            return None
        chunk = infile.addresses[addr_pos : addr_pos + system.n_disks]
        blocks, _ = system.read_batch(chunk)
        if free_input:
            for addr in chunk:
                system.free(addr)
        addr_pos += len(chunk)
        keys = np.concatenate([b.keys for b in blocks])
        if blocks[0].payloads is None:
            return keys, None
        return keys, np.concatenate([b.payloads for b in blocks])

    buf = refill()
    buf_pos = 0
    has_payloads = buf is not None and buf[1] is not None

    def next_record() -> tuple[int, int] | None:
        nonlocal buf, buf_pos
        if buf is None:
            return None
        if buf_pos >= buf[0].size:
            buf = refill()
            buf_pos = 0
            if buf is None:
                return None
        keys, pays = buf
        v = int(keys[buf_pos])
        p = int(pays[buf_pos]) if pays is not None else 0
        buf_pos += 1
        return v, p

    # Heap of (epoch, key, arrival-sequence, payload); the sequence
    # breaks (epoch, key) ties FIFO.
    heap: list[tuple[int, int, int, int]] = []
    seq = 0
    while len(heap) < memory_records:
        rec = next_record()
        if rec is None:
            break
        heap.append((0, rec[0], seq, rec[1]))
        seq += 1
    heapq.heapify(heap)

    runs: list[StripedRun] = []
    run_id = first_run_id
    current_epoch = 0
    out: list[int] = []
    out_pay: list[int] = []

    def close_run() -> None:
        nonlocal out, out_pay, run_id
        if not out:
            return
        runs.append(
            StripedRun.from_sorted_keys(
                system,
                np.asarray(out, dtype=np.int64),
                run_id=run_id,
                start_disk=next(disk_stream),
                payloads=np.asarray(out_pay, dtype=np.int64) if has_payloads else None,
            )
        )
        run_id += 1
        out = []
        out_pay = []

    while heap:
        epoch, key, _, payload = heapq.heappop(heap)
        if epoch != current_epoch:
            close_run()
            current_epoch = epoch
        out.append(key)
        out_pay.append(payload)
        rec = next_record()
        if rec is not None:
            v, p = rec
            heapq.heappush(
                heap, (current_epoch if v >= key else current_epoch + 1, v, seq, p)
            )
            seq += 1
    close_run()
    total = sum(r.n_records for r in runs)
    if total != infile.n_records:
        raise DataError(
            f"replacement selection emitted {total} of {infile.n_records} records"
        )
    return runs
