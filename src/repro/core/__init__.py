"""SRM — the paper's primary contribution.

Configuration (:class:`SRMConfig`), layout strategies, the forecasting
structure, the §5.5 I/O scheduler, the data-moving merger, the fast
block-level simulator, run formation, the full mergesort driver, and
the §6 phase accounting.
"""

from .config import (
    OVERLAP_MODES,
    DSMConfig,
    LatencyAwareConfig,
    OverlapConfig,
    SRMConfig,
    memory_records_for_k,
)
from .events import OverlapEngine, OverlapReport
from .forecasting import INF, INF_I64, ForecastStructure
from .job import MergeJob
from .layout import LayoutStrategy, choose_start_disks
from .losertree import LoserTree
from .merge import MERGERS, MergeResult, merge_runs
from .mergesort import (
    PassStats,
    SortResult,
    run_merge_passes,
    sort_records_on_system,
    srm_mergesort,
    srm_sort,
)
from .phases import (
    PhaseBound,
    initial_load_reads,
    lemma6_read_bound,
    participation_order,
    phase_chain_lengths,
    phase_occupancies,
)
from .partial_striping import (
    PartialStriping,
    merge_order_profile,
    partial_striping_sort,
)
from .run_formation import (
    RS_ENGINES,
    form_runs_load_sort,
    form_runs_replacement_selection,
)
from .schedule import MergeScheduler, ScheduleStats
from .simulator import build_event_stream, simulate_merge
from .sort_simulator import SimPassStats, SimSortResult, simulate_mergesort
from .writer import RunWriter

__all__ = [
    "DSMConfig",
    "SRMConfig",
    "OVERLAP_MODES",
    "LatencyAwareConfig",
    "OverlapConfig",
    "OverlapEngine",
    "OverlapReport",
    "memory_records_for_k",
    "INF",
    "INF_I64",
    "ForecastStructure",
    "MergeJob",
    "LayoutStrategy",
    "choose_start_disks",
    "LoserTree",
    "MERGERS",
    "MergeResult",
    "merge_runs",
    "PassStats",
    "SortResult",
    "run_merge_passes",
    "sort_records_on_system",
    "srm_mergesort",
    "srm_sort",
    "PhaseBound",
    "initial_load_reads",
    "lemma6_read_bound",
    "participation_order",
    "phase_chain_lengths",
    "phase_occupancies",
    "PartialStriping",
    "merge_order_profile",
    "partial_striping_sort",
    "RS_ENGINES",
    "form_runs_load_sort",
    "form_runs_replacement_selection",
    "MergeScheduler",
    "ScheduleStats",
    "build_event_stream",
    "simulate_merge",
    "SimPassStats",
    "SimSortResult",
    "simulate_mergesort",
    "RunWriter",
]
