"""A merge job: the block-boundary description of ``R`` striped runs.

Both execution paths — the data-moving merger (:mod:`repro.core.merge`)
and the fast I/O-count simulator (:mod:`repro.core.simulator`) — drive
the same scheduler from the same job description: for every run, the
smallest (``first``) and largest (``last``) key of each of its blocks,
plus the run's starting disk.  Everything the SRM schedule does is
determined by these boundaries; record contents between them are
irrelevant (the paper's observation that only the relative key order
matters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigError, DataError
from ..rng import RngLike
from .layout import LayoutStrategy, choose_start_disks


@dataclass
class MergeJob:
    """Block boundaries of the runs participating in one merge.

    Attributes
    ----------
    first_keys / last_keys:
        Per run ``r``, arrays of length ``n_blocks(r)`` holding each
        block's smallest / largest key.
    start_disks:
        ``d_r`` for each run.
    n_disks:
        ``D``.
    """

    first_keys: list[np.ndarray]
    last_keys: list[np.ndarray]
    start_disks: np.ndarray
    n_disks: int

    def __post_init__(self) -> None:
        self.start_disks = np.asarray(self.start_disks, dtype=np.int64)
        if not (len(self.first_keys) == len(self.last_keys) == self.start_disks.size):
            raise ConfigError("runs, boundaries and start disks must align")
        if self.n_disks < 1:
            raise ConfigError(f"need at least one disk, got D={self.n_disks}")
        if self.start_disks.size == 0:
            raise ConfigError("a merge job needs at least one run")
        if self.start_disks.size and (
            self.start_disks.min() < 0 or self.start_disks.max() >= self.n_disks
        ):
            raise ConfigError("start disks out of range")
        for r, (fk, lk) in enumerate(zip(self.first_keys, self.last_keys)):
            fk = np.asarray(fk, dtype=np.int64)
            lk = np.asarray(lk, dtype=np.int64)
            self.first_keys[r] = fk
            self.last_keys[r] = lk
            if fk.size == 0:
                raise DataError(f"run {r} has no blocks")
            if fk.shape != lk.shape:
                raise DataError(f"run {r}: first/last key arrays differ in length")
            if np.any(fk > lk):
                raise DataError(f"run {r}: a block's first key exceeds its last key")
            if np.any(lk[:-1] > fk[1:]):
                raise DataError(f"run {r}: blocks are not in sorted run order")

    # -- basic shape -------------------------------------------------------

    @property
    def n_runs(self) -> int:
        """``R`` — the merge order of this job."""
        return len(self.first_keys)

    @property
    def n_blocks(self) -> int:
        """Total blocks across all runs."""
        return sum(int(fk.size) for fk in self.first_keys)

    def blocks_in_run(self, run: int) -> int:
        return int(self.first_keys[run].size)

    def disk_of(self, run: int, block: int) -> int:
        """Disk holding block *block* of run *run* (cyclic rule, §3)."""
        return int((self.start_disks[run] + block) % self.n_disks)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_key_runs(
        cls,
        runs: Sequence[np.ndarray],
        block_size: int,
        n_disks: int,
        strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
        rng: RngLike = None,
        start_disks: Sequence[int] | None = None,
    ) -> "MergeJob":
        """Build a job from sorted key arrays (one per run).

        Keys are cut into blocks of *block_size*; starting disks come
        from *start_disks* if given, else from *strategy*.
        """
        if block_size < 1:
            raise ConfigError(f"block size must be >= 1, got B={block_size}")
        firsts: list[np.ndarray] = []
        lasts: list[np.ndarray] = []
        for r, keys in enumerate(runs):
            keys = np.asarray(keys, dtype=np.int64)
            if keys.size == 0:
                raise DataError(f"run {r} is empty")
            if np.any(keys[:-1] > keys[1:]):
                raise DataError(f"run {r} is not sorted")
            firsts.append(keys[::block_size].copy())
            last_idx = np.minimum(
                np.arange(block_size - 1, keys.size + block_size - 1, block_size),
                keys.size - 1,
            )
            lasts.append(keys[last_idx].copy())
        if start_disks is None:
            start_disks = choose_start_disks(len(firsts), n_disks, strategy, rng)
        return cls(
            first_keys=firsts,
            last_keys=lasts,
            start_disks=np.asarray(start_disks, dtype=np.int64),
            n_disks=n_disks,
        )

    @classmethod
    def from_striped_runs(cls, runs: Sequence, n_disks: int) -> "MergeJob":
        """Build a job from :class:`repro.disks.StripedRun` objects."""
        return cls(
            first_keys=[np.asarray(r.first_keys, dtype=np.int64) for r in runs],
            last_keys=[np.asarray(r.last_keys, dtype=np.int64) for r in runs],
            start_disks=np.array([r.start_disk for r in runs], dtype=np.int64),
            n_disks=n_disks,
        )
