"""Loser-tree (tournament) merger and the batched merge data plane.

Two replacements for the ``heapq`` loop in :mod:`repro.core.merge`, both
producing bit-identical scheduler behaviour (same ``ParRead`` stream,
same flushes, same output records):

* :class:`LoserTree` — a classic tournament tree over the runs' current
  keys.  Where a binary heap pays a pop *and* a push per key-range
  switch, the loser tree replays exactly one leaf-to-root comparison
  path, and the runner-up key (the merge's galloping ``limit``) falls
  out of the same path.  :func:`merge_loop_cycles` drives it one key
  range at a time — the granularity the overlap engine needs for its
  simulated clock.
* :func:`merge_loop_batched` — the demand-path data plane.  Between two
  ``ParRead`` operations the set of resident blocks is fixed, so every
  resident record smaller than the *galloping bound* — the smallest
  first key of any non-resident block (``min_i H_i[j]`` per run, a
  single vectorized reduction) — can be emitted in one step:
  ``searchsorted`` cuts each resident block at the bound, and one stable
  ``argsort`` interleaves whole block slices instead of one Python heap
  cycle per key-range switch.

Ordering contract (shared with the heapq reference): records are emitted
in ``(key, run index, position in run)`` order.  Ties across runs go to
the smaller run index — the heap's ``(key, run)`` tie-break — which the
batched path reproduces by concatenating run slices in run order and
sorting with a stable kind, and the cycle paths reproduce by comparing
``(key, leaf)`` pairs.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..disks.block import NO_KEY
from ..errors import ScheduleError
from ..telemetry import TELEMETRY_OFF
from ..telemetry.schema import H_DRAIN_BATCH, MERGE_DRAIN_CYCLES, batch_edges

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..disks.files import StripedRun
    from ..disks.system import ParallelDiskSystem
    from .events import OverlapEngine
    from .schedule import MergeScheduler
    from .writer import RunWriter

#: Leaf key for an exhausted run — sorts after every real key.
INF = math.inf


class LoserTree:
    """Tournament tree of ``k`` sources keyed by ``(key, leaf index)``.

    The tree keeps the *losers* of each internal match; the overall
    winner sits at the root.  Replacing the winner's key replays only
    the winner's leaf-to-root path (``ceil(log2 k)`` comparisons), and
    the runner-up — the second-smallest source — is by construction the
    best of the losers on that same path.

    Exhausted sources are represented by :data:`INF` keys; ``k`` is
    padded to a power of two with permanently-infinite leaves.
    """

    __slots__ = ("n_leaves", "_size", "_keys", "_losers", "_winner")

    def __init__(self, initial_keys) -> None:
        keys = [k for k in initial_keys]
        k = len(keys)
        if k < 1:
            raise ScheduleError("loser tree needs at least one source")
        size = 1
        while size < k:
            size <<= 1
        self.n_leaves = k
        self._size = size
        self._keys = keys + [INF] * (size - k)
        # _losers[i] (1 <= i < size) is the losing leaf of the match at
        # internal node i; the winner of the whole bracket is _winner.
        losers = [0] * size
        win = [0] * (2 * size)
        for leaf in range(size):
            win[size + leaf] = leaf
        ks = self._keys
        for node in range(size - 1, 0, -1):
            a, b = win[2 * node], win[2 * node + 1]
            if (ks[a], a) <= (ks[b], b):
                win[node], losers[node] = a, b
            else:
                win[node], losers[node] = b, a
        self._losers = losers
        self._winner = win[1]

    @property
    def winner(self) -> int:
        """Leaf index of the current overall winner."""
        return self._winner

    def winner_key(self):
        """Key of the current winner (:data:`INF` when all exhausted)."""
        return self._keys[self._winner]

    def runner_up_key(self):
        """Key of the second-smallest source — the galloping ``limit``.

        The runner-up lost a match directly against the winner, so it is
        the best ``(key, leaf)`` among the losers on the winner's path.
        """
        ks = self._keys
        losers = self._losers
        node = (self._winner + self._size) >> 1
        best_key = INF
        best_leaf = -1
        while node >= 1:
            leaf = losers[node]
            key = ks[leaf]
            if best_leaf < 0 or (key, leaf) < (best_key, best_leaf):
                best_key, best_leaf = key, leaf
            node >>= 1
        return best_key

    def replace(self, new_key) -> int:
        """Give the winner's leaf *new_key* and replay its path.

        Returns the new overall winner's leaf index.  Pass :data:`INF`
        to retire an exhausted source.
        """
        ks = self._keys
        losers = self._losers
        w = self._winner
        ks[w] = new_key
        node = (w + self._size) >> 1
        while node >= 1:
            loser = losers[node]
            if (ks[loser], loser) < (ks[w], w):
                losers[node] = w
                w = loser
            node >>= 1
        self._winner = w
        return w


# ---------------------------------------------------------------------------
# Cycle-granular loser-tree loop (overlap-engine and eager-prefetch paths).
# ---------------------------------------------------------------------------


def merge_loop_cycles(
    sched: "MergeScheduler",
    writer: "RunWriter",
    block_data: dict,
    runs: "list[StripedRun]",
    system: "ParallelDiskSystem",
    free_inputs: bool,
    validate: bool,
    eng: "OverlapEngine | None",
    prefetch: bool,
    telemetry=None,
) -> int:
    """One key range per cycle, exactly like the heapq loop.

    Used when an :class:`~repro.core.events.OverlapEngine` or the legacy
    eager-prefetch mode paces the merge: those need per-key-range
    ``compute``/``pump`` hooks, so the batched drain cannot be used.
    The chunk sequence (and therefore every engine clock advance) is
    identical to the heapq reference.
    """
    job = sched.job
    R = job.n_runs
    offsets = [0] * R
    tree = LoserTree([int(job.first_keys[r][0]) for r in range(R)])
    tel = telemetry if telemetry is not None else TELEMETRY_OFF
    h_batch = tel.histogram(H_DRAIN_BATCH, batch_edges(system.block_size))
    m_cycles = tel.counter(MERGE_DRAIN_CYCLES)
    cycles = 0
    while True:
        key = tree.winner_key()
        if key == INF:
            break
        cycles += 1
        r = tree.winner
        limit = tree.runner_up_key()
        b = sched.leading[r]
        sched.ensure_resident(r, b)
        if eng is not None:
            eng.wait_for(r, b)
        data, pay = block_data[(r, b)]
        off = offsets[r]
        if validate and int(data[off]) != key:
            raise ScheduleError(
                f"merge tree desync: expected key {key}, found {int(data[off])}"
            )
        if limit == INF:
            hi = data.size
        else:
            hi = int(np.searchsorted(data, limit, side="left"))
            if hi <= off:
                # Duplicate keys across runs (key == limit): the
                # (key, leaf) tie-break would hand the turn straight
                # back to this run; consume the whole equal prefix.
                hi = int(np.searchsorted(data, key, side="right"))
        writer.append(data[off:hi], None if pay is None else pay[off:hi])
        h_batch.observe(hi - off)
        if eng is not None:
            eng.compute(hi - off)

        if hi == data.size:
            del block_data[(r, b)]
            if free_inputs:
                system.free(runs[r].addresses[b])
            sched.on_leading_depleted(r)
            offsets[r] = 0
            if not sched.run_exhausted(r):
                nb = sched.leading[r]
                if sched.is_resident(r, nb):
                    tree.replace(int(block_data[(r, nb)][0][0]))
                else:
                    fk = sched.fds.next_block_key_of_run(r)
                    if fk == NO_KEY or math.isinf(fk):
                        raise ScheduleError(
                            f"run {r} not exhausted but FDS sees no block"
                        )
                    tree.replace(int(fk))
            else:
                tree.replace(INF)
        else:
            offsets[r] = hi
            tree.replace(int(data[hi]))

        if eng is not None:
            eng.pump(sched)
        elif prefetch:
            sched.maybe_prefetch()
    m_cycles.inc(cycles)
    return cycles


# ---------------------------------------------------------------------------
# Batched demand-path data plane.
# ---------------------------------------------------------------------------


def merge_loop_batched(
    sched: "MergeScheduler",
    writer: "RunWriter",
    block_data: dict,
    runs: "list[StripedRun]",
    system: "ParallelDiskSystem",
    free_inputs: bool,
    validate: bool,
    telemetry=None,
) -> int:
    """Drain whole resident block slices between consecutive ``ParRead``\\ s.

    Each iteration computes the *galloping bound* — the smallest
    ``(first key, run)`` of any non-resident block, straight from the
    forecasting structure's vectorized per-run minima — then emits every
    resident record ordered before that bound in one stable merge.  When
    nothing is emittable the bound's block is demand-fetched, exactly
    where the cycle loop would have stalled, so the ``ParRead``/flush
    stream is bit-identical to the reference merger.

    Returns the number of consumed key ranges (block slices), the
    batched analogue of heap cycles.
    """
    job = sched.job
    R = job.n_runs
    fds = sched.fds
    n_blocks = [job.blocks_in_run(r) for r in range(R)]
    offsets = [0] * R
    tel = telemetry if telemetry is not None else TELEMETRY_OFF
    h_batch = tel.histogram(H_DRAIN_BATCH, batch_edges(system.block_size))
    m_cycles = tel.counter(MERGE_DRAIN_CYCLES)
    cycles = 0
    while not sched.finished():
        bounds, valid = fds.min_keys_per_run()
        bounded = bool(valid.any())
        if bounded:
            # Smallest (key, run) among runs with on-disk blocks; argmin
            # over the valid subset keeps the smallest-run tie-break.
            idx = np.flatnonzero(valid)
            br = int(idx[bounds[idx].argmin()])
            bound_key = int(bounds[br])
        else:
            br = -1
            bound_key = 0

        # Collect, per run, the resident slices ordered before the bound.
        seg_keys: list[np.ndarray] = []
        seg_pays: list[np.ndarray] | None = None
        depleted: list[tuple[int, int, int]] = []  # (last_key, run, block)
        leading = sched.leading
        for r in range(R):
            b = leading[r]
            off = offsets[r]
            new_off = off
            while b < n_blocks[r] and (r, b) in block_data:
                data, pay = block_data[(r, b)]
                if validate and new_off == 0:
                    # First touch of this block: the counterpart of the
                    # heapq loop's per-cycle desync check.
                    if int(data[0]) != int(job.first_keys[r][b]) or bool(
                        np.any(data[1:] < data[:-1])
                    ):
                        raise ScheduleError(
                            f"merge batch desync: run {r} block {b}"
                            " contents disagree with run metadata"
                        )
                if bounded:
                    # Records equal to the bound belong to this run iff it
                    # precedes the bound's run in the (key, run) order —
                    # or owns the bound itself (earlier block, same run).
                    side = "right" if r <= br else "left"
                    hi = int(np.searchsorted(data, bound_key, side=side))
                else:
                    hi = data.size
                if hi <= new_off:
                    break
                seg_keys.append(data[new_off:hi])
                if pay is not None:
                    if seg_pays is None:
                        seg_pays = []
                    seg_pays.append(pay[new_off:hi])
                if hi < data.size:
                    new_off = hi
                    break
                depleted.append((int(data[-1]), r, b))
                b += 1
                new_off = 0
            offsets[r] = new_off

        if not seg_keys:
            if not bounded:  # pragma: no cover - guarded by finished()
                raise ScheduleError("merge stalled with no on-disk blocks")
            # The globally smallest record lives in a non-resident block:
            # demand-fetch it (one ParRead, as in the cycle loop).
            sched.ensure_resident(br, leading[br])
            continue

        cycles += len(seg_keys)
        if len(seg_keys) == 1:
            merged_keys = seg_keys[0]
            merged_pays = seg_pays[0] if seg_pays is not None else None
        else:
            merged_keys = np.concatenate(seg_keys)
            order = np.argsort(merged_keys, kind="stable")
            merged_keys = merged_keys[order]
            merged_pays = (
                np.concatenate(seg_pays)[order] if seg_pays is not None else None
            )
        writer.append(merged_keys, merged_pays)
        h_batch.observe(merged_keys.size)

        # Fire depletions in consumption order: (last key, run, block)
        # sorts each run's blocks in sequence and interleaves runs the
        # way the per-cycle loop would have.
        depleted.sort()
        for _, r, b in depleted:
            del block_data[(r, b)]
            if free_inputs:
                system.free(runs[r].addresses[b])
            sched.on_leading_depleted(r)
    m_cycles.inc(cycles)
    return cycles
