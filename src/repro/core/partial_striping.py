"""Partial striping — the [VS94] technique referenced in §2.2.

The paper assumes ``D = O(B)`` and notes: "We can use the partial
striping technique of [VS94] to enforce the assumption if needed."
Partial striping groups the ``D`` physical disks into clusters of ``g``
and treats each cluster as one *logical* disk with block size ``g·B``:
a logical block is a stripe across its cluster, so one logical-block
transfer is one parallel I/O touching ``g`` distinct physical disks.

The knob interpolates between the two algorithms of the paper:

* ``g = 1`` — plain SRM on all ``D`` disks (maximal merge order,
  occupancy overhead ``v``);
* ``g = D`` — one logical disk of block ``D·B``: exactly DSM's logical
  view (no overhead, but the merge order collapses).

Intermediate ``g`` trades merge order against forecasting/occupancy
pressure — useful when ``D >> B`` would otherwise make the FDS and the
``4D`` buffer overhead dominate memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..rng import RngLike
from .config import SRMConfig
from .layout import LayoutStrategy


@dataclass(frozen=True, slots=True)
class PartialStriping:
    """A grouping of ``D`` physical disks into clusters of ``g``.

    Attributes
    ----------
    physical_disks:
        ``D`` — physical drives available.
    physical_block:
        ``B`` — records per physical block.
    group_size:
        ``g`` — disks per cluster; must divide ``D``.
    """

    physical_disks: int
    physical_block: int
    group_size: int

    def __post_init__(self) -> None:
        if self.physical_disks < 1:
            raise ConfigError(f"need at least one disk, got {self.physical_disks}")
        if self.physical_block < 1:
            raise ConfigError(f"block size must be >= 1, got {self.physical_block}")
        if not 1 <= self.group_size <= self.physical_disks:
            raise ConfigError(
                f"group size {self.group_size} out of range [1, {self.physical_disks}]"
            )
        if self.physical_disks % self.group_size:
            raise ConfigError(
                f"group size {self.group_size} does not divide D={self.physical_disks}"
            )

    @property
    def logical_disks(self) -> int:
        """Number of logical disks: ``D / g``."""
        return self.physical_disks // self.group_size

    @property
    def logical_block(self) -> int:
        """Records per logical block: ``g · B``."""
        return self.group_size * self.physical_block

    def srm_config(self, memory_records: int) -> SRMConfig:
        """SRM configuration on the logical geometry for *memory_records*.

        The merge order follows ``R = (M/B_l - 4·D_l) / (2 + D_l/B_l)``
        with the logical disk count and block size; ``g = 1`` recovers
        the physical configuration.
        """
        return SRMConfig.from_memory(
            memory_records, self.logical_disks, self.logical_block
        )

    def physical_ios(self, logical_parallel_ios: int) -> int:
        """Physical parallel I/O count for a logical operation count.

        One logical parallel I/O moves up to ``D_l`` logical blocks —
        ``D_l · g = D`` physical blocks on distinct physical disks — so
        it is exactly one physical parallel I/O.
        """
        return logical_parallel_ios


def partial_striping_sort(
    keys: np.ndarray,
    memory_records: int,
    n_disks: int,
    block_size: int,
    group_size: int,
    rng: RngLike = None,
    strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
    run_length: int | None = None,
):
    """Sort with SRM over a partially-striped disk array.

    Returns ``(sorted_keys, SortResult, PartialStriping)``.  The
    returned result's I/O counts are logical == physical (see
    :meth:`PartialStriping.physical_ios`).
    """
    from .mergesort import srm_sort

    ps = PartialStriping(
        physical_disks=n_disks,
        physical_block=block_size,
        group_size=group_size,
    )
    cfg = ps.srm_config(memory_records)
    out, result = srm_sort(
        keys, cfg, strategy=strategy, rng=rng, run_length=run_length
    )
    return out, result, ps


def merge_order_profile(
    memory_records: int, n_disks: int, block_size: int
) -> list[tuple[int, int]]:
    """Merge order attainable at every divisor ``g`` of ``D``.

    Returns ``[(g, R_g), ...]`` for all valid group sizes, showing the
    SRM→DSM interpolation: ``R`` shrinks roughly by ``g`` as clusters
    grow.
    """
    out = []
    for g in range(1, n_disks + 1):
        if n_disks % g:
            continue
        try:
            cfg = PartialStriping(n_disks, block_size, g).srm_config(memory_records)
            out.append((g, cfg.merge_order))
        except ConfigError:
            continue
    return out
