"""Algorithm configurations: memory budgets and merge orders.

The paper expresses everything in records: internal memory holds ``M``
records, a block holds ``B``, and there are ``D`` disks.

* **SRM** needs ``M/B >= 2R + 4D + RD/B`` internal blocks (§2.2): the
  ``{M_L, M_R, M_D, M_W}`` partition accounts for ``2R + 4D`` of them
  and the forecasting data structure for about ``RD/B``.  Hence the
  merge order ``R = (M/B - 4D) / (2 + D/B)``.
* **DSM** (§9.1) treats the array as one logical disk with block size
  ``DB``; with ``2D`` blocks of read buffer per run and ``2D`` blocks of
  write buffer it merges ``(M/B - 2D) / 2D`` runs at a time.

The paper's comparison grid uses ``R = kD`` and
``M = (2k+4)·D·B + k·D^2`` so that both algorithms get identical memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


def memory_records_for_k(k: int, n_disks: int, block_size: int) -> int:
    """The paper's memory size ``M = (2k+4)DB + kD^2`` (in records)."""
    return (2 * k + 4) * n_disks * block_size + k * n_disks * n_disks


#: Overlap disciplines of the discrete-event engine
#: (:class:`repro.core.events.OverlapEngine`): demand-paced, read-ahead
#: only, or read-ahead plus write-behind.
OVERLAP_MODES = ("none", "prefetch", "full")


@dataclass(frozen=True, slots=True)
class LatencyAwareConfig:
    """Latency-adaptive scheduling policy for the overlap engine.

    The §5.5 schedule assumes homogeneous disks; on a straggler farm the
    slowest spindle sets the makespan.  When this config is attached to
    an :class:`OverlapConfig`, the engine keeps a per-disk service-time
    EWMA (fed from :class:`~repro.disks.service.DiskService`
    completions) and, once a disk measures slow relative to its peers:

    * **deepens the read-ahead window** while the slow disk still offers
      blocks, so its long service hides behind more merge compute;
    * **biases flush victims** toward blocks that will be re-read from
      fast disks (the §5.5 eviction rank is consulted first; among the
      farthest-future candidates the cheapest re-read wins);
    * **floors eager issues** so an idle straggler queue is refilled
      even when the nominal window is already full.

    None of this changes *what* the sort produces — output stays
    bit-identical — only the read-ahead/flush schedule and therefore the
    simulated makespan.  With no ``LatencyAwareConfig`` attached (or
    ``enabled=False``) the engine and scheduler are bit-identical to the
    fixed-policy reference planes, schedule included.

    Attributes
    ----------
    enabled:
        Master switch; ``False`` makes the config inert (measurement
        off, schedule bit-identical to the default path).
    ewma_alpha:
        Weight of the newest service-time sample in the per-disk EWMA,
        in ``(0, 1]``.
    slow_threshold:
        A disk is *slow* when its EWMA exceeds ``slow_threshold`` times
        the median EWMA of all disks with at least one sample.
    depth_boost:
        Extra eager ``ParRead`` operations added to the read-ahead
        window while a slow disk still offers blocks (each brings in up
        to ``D`` blocks, like the base window).
    min_eager_per_pump:
        Eager-issue floor: when a slow disk sits idle with blocks still
        on it, up to this many extra case-2a reads are issued per pump
        even if the nominal window is full.
    """

    enabled: bool = True
    ewma_alpha: float = 0.35
    slow_threshold: float = 1.25
    depth_boost: int = 2
    min_eager_per_pump: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.slow_threshold < 1.0:
            raise ConfigError(
                f"slow_threshold must be >= 1, got {self.slow_threshold}"
            )
        if self.depth_boost < 0:
            raise ConfigError(
                f"depth_boost must be >= 0, got {self.depth_boost}"
            )
        if self.min_eager_per_pump < 0:
            raise ConfigError(
                f"min_eager_per_pump must be >= 0, got {self.min_eager_per_pump}"
            )


@dataclass(frozen=True, slots=True)
class OverlapConfig:
    """Configuration of the overlapped-I/O execution engine.

    Attributes
    ----------
    mode:
        ``"none"`` — demand-paced (every read and write stalls the
        merge); ``"prefetch"`` — eager case-2a reads fill a read-ahead
        window; ``"full"`` — read-ahead plus write-behind (one output
        stripe in flight, the ``M_W = 2D`` discipline).
    prefetch_depth:
        Read-ahead window in eager ``ParRead`` operations (each brings
        in up to ``D`` blocks).  0 disables read-ahead even in
        ``prefetch``/``full`` mode.
    cpu_us_per_record:
        Internal merge processing cost per record, in microseconds,
        charged against the simulated clock.
    job_tag:
        Optional job id stamped on every disk op the engine queues
        (trace-record attrs), so the critical-path attribution of a
        shared timeline decomposes per job/tenant.
    latency:
        Optional :class:`LatencyAwareConfig`.  When attached (and
        enabled), the engine measures per-disk service times and steers
        prefetch depth and flush victims away from slow disks.  The
        default ``None`` keeps the fixed policy: output *and* schedule
        bit-identical to the reference planes.
    """

    mode: str = "full"
    prefetch_depth: int = 2
    cpu_us_per_record: float = 1.0
    job_tag: str | None = None
    latency: "LatencyAwareConfig | None" = None

    def __post_init__(self) -> None:
        if self.mode not in OVERLAP_MODES:
            raise ConfigError(
                f"overlap mode must be one of {OVERLAP_MODES}, got {self.mode!r}"
            )
        if self.prefetch_depth < 0:
            raise ConfigError(
                f"prefetch depth must be >= 0, got {self.prefetch_depth}"
            )
        if self.cpu_us_per_record < 0:
            raise ConfigError(
                f"cpu cost must be >= 0, got {self.cpu_us_per_record}"
            )


@dataclass(frozen=True, slots=True)
class SRMConfig:
    """Parameters of an SRM mergesort instance.

    Attributes
    ----------
    n_disks:
        ``D`` — number of independent disks.
    block_size:
        ``B`` — records per block.
    merge_order:
        ``R`` — runs merged simultaneously in each merge step.
    """

    n_disks: int
    block_size: int
    merge_order: int

    def __post_init__(self) -> None:
        if self.n_disks < 1:
            raise ConfigError(f"need at least one disk, got D={self.n_disks}")
        if self.block_size < 1:
            raise ConfigError(f"block size must be >= 1, got B={self.block_size}")
        if self.merge_order < 2:
            raise ConfigError(
                f"merge order must be >= 2, got R={self.merge_order}"
                " (not enough memory for any merge?)"
            )

    # -- constructors --------------------------------------------------

    @classmethod
    def from_k(cls, k: int, n_disks: int, block_size: int) -> "SRMConfig":
        """The paper's ``R = kD`` parametrization."""
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        return cls(n_disks=n_disks, block_size=block_size, merge_order=k * n_disks)

    @classmethod
    def from_memory(cls, memory_records: int, n_disks: int, block_size: int) -> "SRMConfig":
        """Largest merge order supported by ``memory_records`` of RAM.

        Solves ``M/B >= 2R + 4D + RD/B`` for integer ``R``:
        ``R = floor((M - 4DB) / (2B + D))``.
        """
        r = (memory_records - 4 * n_disks * block_size) // (2 * block_size + n_disks)
        if r < 2:
            raise ConfigError(
                f"memory of {memory_records} records supports merge order {r} < 2 "
                f"with D={n_disks}, B={block_size}"
            )
        return cls(n_disks=n_disks, block_size=block_size, merge_order=int(r))

    # -- derived quantities ----------------------------------------------

    @property
    def k(self) -> float:
        """``R / D`` — blocks of merge order per disk."""
        return self.merge_order / self.n_disks

    @property
    def memory_blocks(self) -> int:
        """Internal blocks required: ``2R + 4D`` buffers plus ~``RD/B`` FDS."""
        fds_blocks = -(-self.merge_order * self.n_disks // self.block_size)
        return 2 * self.merge_order + 4 * self.n_disks + fds_blocks

    @property
    def memory_records(self) -> int:
        """Memory footprint in records: ``(2R + 4D)B + RD``."""
        return (2 * self.merge_order + 4 * self.n_disks) * self.block_size + (
            self.merge_order * self.n_disks
        )


@dataclass(frozen=True, slots=True)
class DSMConfig:
    """Parameters of a disk-striped mergesort (DSM) instance.

    DSM coordinates the disks so every I/O reads/writes the same slot on
    all ``D`` disks: one logical disk with block size ``D·B``.
    """

    n_disks: int
    block_size: int
    merge_order: int

    def __post_init__(self) -> None:
        if self.n_disks < 1:
            raise ConfigError(f"need at least one disk, got D={self.n_disks}")
        if self.block_size < 1:
            raise ConfigError(f"block size must be >= 1, got B={self.block_size}")
        if self.merge_order < 2:
            raise ConfigError(
                f"merge order must be >= 2, got R={self.merge_order}"
                " (not enough memory for any merge?)"
            )

    @classmethod
    def from_memory(cls, memory_records: int, n_disks: int, block_size: int) -> "DSMConfig":
        """Largest DSM merge order in ``memory_records`` of RAM (§9.1).

        ``R_DSM = floor((M/B - 2D) / 2D)`` — with ``2D`` blocks of write
        buffer and ``2D`` blocks of read buffer per input run.  For the
        paper's ``M = (2k+4)DB + kD^2`` this equals ``k + 1 + kD/2B``.
        """
        r = (memory_records // block_size - 2 * n_disks) // (2 * n_disks)
        if r < 2:
            raise ConfigError(
                f"memory of {memory_records} records supports DSM merge order {r} < 2 "
                f"with D={n_disks}, B={block_size}"
            )
        return cls(n_disks=n_disks, block_size=block_size, merge_order=int(r))

    @classmethod
    def matching_srm(cls, srm: SRMConfig) -> "DSMConfig":
        """DSM given exactly the memory SRM uses — the paper's comparison."""
        return cls.from_memory(srm.memory_records, srm.n_disks, srm.block_size)

    @property
    def superblock_records(self) -> int:
        """Records per logical block: ``D·B``."""
        return self.n_disks * self.block_size

    @property
    def memory_records(self) -> int:
        """Memory footprint in records: ``2D·B·(R + 1)``.

        ``2D`` read-buffer blocks per input run plus ``2D`` write-buffer
        blocks (§9.1).
        """
        return 2 * self.n_disks * self.block_size * (self.merge_order + 1)
