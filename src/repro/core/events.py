"""Discrete-event overlapped-I/O engine for the SRM merge.

The demand-paced merge stalls on every ``ParRead``: I/O and computation
strictly alternate, so the paper's "SRM overlaps I/O operations and
internal computation" claim (post-Lemma-1) could previously only be
*estimated* after the fact (:mod:`repro.analysis.overlap`).  This engine
*executes* the overlap on a shared simulated clock:

* every disk is an independent FIFO server
  (:class:`~repro.disks.service.ServiceNetwork`) costed by the
  :class:`~repro.disks.timing.DiskTimingModel`;
* the chunked internal merge advances the clock by a per-record CPU
  cost and blocks only when a needed block has not yet *arrived*;
* a **read-ahead window** of ``prefetch_depth`` eager ``ParRead``\\ s
  (issued through :meth:`MergeScheduler.maybe_prefetch`, so every eager
  read is a legal §5.5 case-2a operation) keeps the disks busy ahead of
  demand;
* **write-behind** lets the :class:`~repro.core.writer.RunWriter` hand a
  full output stripe to the disks and keep merging; ``M_W = 2D`` admits
  exactly one stripe in flight while the next one fills.

The engine never changes *what* the scheduler reads, flushes, or writes
— only *when* the simulated clock says those operations complete — so
``overlap="none"`` reproduces the demand-paced schedule's
:class:`~repro.core.schedule.ScheduleStats` exactly, and every mode
produces byte-identical sorted output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..disks.service import ServiceEwma, ServiceNetwork
from ..disks.timing import DiskTimingModel
from ..errors import ConfigError
from ..telemetry import NULL_METRIC, TELEMETRY_OFF
from ..telemetry.schema import (
    ADAPTIVE_DEPTH_BOOSTS,
    ADAPTIVE_FLOOR_ISSUES,
    ADAPTIVE_SLOW_DISKS,
    EV_OVERLAP_DISKS,
    H_OVERLAP_QUEUE_DEPTH,
)
from ..telemetry.trace import NetTracer
from .config import OVERLAP_MODES, LatencyAwareConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .schedule import MergeScheduler

#: A read instruction as the scheduler reports it: (run, block, disk).
ReadOp = tuple[int, int, int]


@dataclass(frozen=True, slots=True)
class OverlapReport:
    """Simulated-time outcome of one engine-driven merge.

    Attributes
    ----------
    mode / prefetch_depth:
        The overlap discipline the engine ran under.
    makespan_ms:
        Wall-clock of the merge: CPU finish or last disk going idle,
        whichever is later.
    cpu_busy_ms:
        Time spent merging records.
    read_stall_ms / write_stall_ms:
        Time the CPU waited for a block to arrive / for an output-stripe
        frame to free up.
    io_busy_ms:
        Summed per-disk service time (reads + writes).
    disk_utilization:
        ``io_busy_ms / (D * makespan_ms)`` — mean busy fraction per disk.
    demand_reads / eager_reads:
        ``ParRead`` operations issued on a stall vs. ahead of demand.
    writes:
        Parallel write operations (output stripes).
    adaptive:
        True when the engine ran with an enabled
        :class:`~repro.core.config.LatencyAwareConfig`.
    depth_boosts / floor_issues:
        Pumps that ran with a deepened read-ahead window, and eager
        reads issued by the slow-disk floor beyond the nominal window.
    slow_disks:
        Disks the service-time EWMA classified as slow at merge end.
    """

    mode: str
    prefetch_depth: int
    makespan_ms: float
    cpu_busy_ms: float
    read_stall_ms: float
    write_stall_ms: float
    io_busy_ms: float
    disk_utilization: float
    demand_reads: int
    eager_reads: int
    writes: int
    adaptive: bool = False
    depth_boosts: int = 0
    floor_issues: int = 0
    slow_disks: tuple[int, ...] = ()

    @property
    def cpu_stall_ms(self) -> float:
        """Total time the CPU spent waiting on the disks."""
        return self.read_stall_ms + self.write_stall_ms

    @property
    def cpu_utilization(self) -> float:
        """Fraction of the makespan the CPU spent merging.

        A zero-duration (empty-input) merge has no makespan to be busy
        during, so its utilization is 0.0 rather than a division error
        or a vacuous 1.0.
        """
        return self.cpu_busy_ms / self.makespan_ms if self.makespan_ms else 0.0


class OverlapEngine:
    """Shared simulated clock for one merge's reads, writes, and compute.

    The engine is driven by hooks: the merge loop reports computation
    (:meth:`compute`) and block needs (:meth:`wait_for`), the scheduler's
    callbacks report issued reads and flushes (:meth:`on_parread`,
    :meth:`on_flush`), and the writer reports stripes
    (:meth:`on_write`).  :meth:`pump` issues eager reads inside the
    read-ahead window; :meth:`finish` drains the disks and returns the
    :class:`OverlapReport`.

    Parameters
    ----------
    timing:
        Disk service-time model.
    block_size:
        Records per block.
    n_disks:
        ``D``.
    cpu_us_per_record:
        Internal merge processing cost per record, in microseconds.
    mode:
        ``"none"`` (demand-paced), ``"prefetch"`` (read-ahead only), or
        ``"full"`` (read-ahead + write-behind).
    prefetch_depth:
        Read-ahead window in eager ``ParRead`` operations; the engine
        keeps at most ``prefetch_depth * D`` prefetched-but-unconsumed
        blocks in memory.  Ignored when ``mode="none"``.
    faults:
        Optional :class:`~repro.faults.plan.FaultInjector` shared with
        the disk system: the service network scales service times by
        straggler factors, floors starts at stall-window ends, and
        drains the retry/backoff penalties the synchronous data path
        accumulated — so fault cost shows up in the simulated makespan.
    latency:
        Optional :class:`~repro.core.config.LatencyAwareConfig`.  When
        given and enabled, the engine arms a per-disk service-time EWMA
        on the network and steers the read-ahead window and eager-issue
        floor toward slow disks (see :meth:`pump`); ``None`` (or
        ``enabled=False``) keeps the fixed policy bit-identical.
    """

    def __init__(
        self,
        timing: DiskTimingModel,
        block_size: int,
        n_disks: int,
        cpu_us_per_record: float,
        mode: str = "full",
        prefetch_depth: int = 2,
        telemetry=None,
        faults=None,
        job_tag: str | None = None,
        latency: LatencyAwareConfig | None = None,
    ) -> None:
        if mode not in OVERLAP_MODES:
            raise ConfigError(
                f"overlap mode must be one of {OVERLAP_MODES}, got {mode!r}"
            )
        if prefetch_depth < 0:
            raise ConfigError(f"prefetch depth must be >= 0, got {prefetch_depth}")
        if cpu_us_per_record < 0:
            raise ConfigError(f"cpu cost must be >= 0, got {cpu_us_per_record}")
        self.mode = mode
        self.prefetch_depth = prefetch_depth
        self.net = ServiceNetwork(n_disks, timing, block_size, faults=faults)
        self._cpu_ms_per_record = cpu_us_per_record / 1000.0
        self._window = prefetch_depth * n_disks  # read-ahead, in blocks
        #: Simulated CPU clock.
        self.now = 0.0
        self.cpu_busy_ms = 0.0
        self.read_stall_ms = 0.0
        self.write_stall_ms = 0.0
        self.demand_reads = 0
        self.eager_reads = 0
        self.writes = 0
        #: Arrival time of issued-but-not-yet-awaited blocks.
        self._arrival: dict[tuple[int, int], float] = {}
        #: Blocks fetched ahead of demand and not yet consumed.
        self._prefetched: set[tuple[int, int]] = set()
        #: Completion time of the newest in-flight write-behind stripe.
        self._write_done = 0.0
        self._eager_issue = False  # set by pump() around maybe_prefetch()
        self._tel = telemetry if telemetry is not None else TELEMETRY_OFF
        # Latency-adaptive policy: armed only when a config is attached
        # AND enabled, so the default path stays bit-identical.
        self.latency = latency if latency is not None and latency.enabled else None
        self.depth_boosts = 0
        self.floor_issues = 0
        if self.latency is not None:
            self.net.ewma = ServiceEwma(n_disks, self.latency.ewma_alpha)
            self._m_depth_boosts = self._tel.counter(ADAPTIVE_DEPTH_BOOSTS)
            self._m_floor_issues = self._tel.counter(ADAPTIVE_FLOOR_ISSUES)
        else:
            self._m_depth_boosts = NULL_METRIC
            self._m_floor_issues = NULL_METRIC
        # Queue depth is in-flight blocks.  Capacity is the eager
        # window *plus* one demand ParRead of width <= D that can be
        # outstanding on top of it — so demand mode (window 0) still
        # gets D+1 distinct buckets instead of collapsing to one.
        depth_cap = self._window + n_disks
        self._h_depth = self._tel.histogram(
            H_OVERLAP_QUEUE_DEPTH,
            tuple(float(v) for v in range(0, depth_cap + 1)),
        )
        # Causal tracing: when the telemetry handle carries a trace
        # ring, every clock advance and disk request becomes a record
        # whose binding dep lets the critical path tile the makespan.
        self._trace = getattr(self._tel, "trace", None)
        self._cpu_tail: int | None = None  # last record on the cpu lane
        self._write_done_rec: int | None = None
        self._arrival_rec: dict[tuple[int, int], int] = {}
        if self._trace is not None:
            self._dom = self._trace.new_domain("merge")
            self.net.tracer = NetTracer(self._trace, self._dom)
            if job_tag is not None:
                # Every queued disk op carries the owning job's id, so
                # per-tenant attribution can decompose an engine-driven
                # timeline the same way it splits the demand clock.
                self.net.tracer.context = {"job": job_tag}

    # -- scheduler callbacks ---------------------------------------------

    def on_parread(self, ops: list[ReadOp]) -> None:
        """A ``ParRead`` was issued now; queue its per-disk requests."""
        tracer = self.net.tracer
        if tracer is not None:
            tracer.issuer_dep = self._cpu_tail
        completes = self.net.submit([d for _, _, d in ops], self.now)
        if tracer is not None:
            for (r, b, _d), rec in zip(ops, tracer.last_batch):
                self._arrival_rec[(r, b)] = rec
        for (r, b, _d), t in zip(ops, completes):
            self._arrival[(r, b)] = t
            if self._eager_issue:
                self._prefetched.add((r, b))
        if self._eager_issue:
            self.eager_reads += 1
        else:
            self.demand_reads += 1
        self._h_depth.observe(len(self._arrival))

    def on_flush(self, evicted: list[tuple[int, int]]) -> None:
        """Flushed blocks leave memory; forget their arrivals."""
        for rb in evicted:
            self._arrival.pop(rb, None)
            self._prefetched.discard(rb)

    # -- CPU-side events ---------------------------------------------------

    def compute(self, n_records: int) -> None:
        """The internal merge consumed *n_records*; advance the clock."""
        dt = n_records * self._cpu_ms_per_record
        if dt > 0.0 and self._trace is not None:
            self._cpu_tail = self._trace.add(
                "compute", "cpu", self._dom, self.now, self.now,
                self.now + dt, dep=self._cpu_tail,
                attrs={"records": n_records},
            )
        self.now += dt
        self.cpu_busy_ms += dt

    def wait_for(self, run: int, block: int) -> None:
        """The merge is about to read (*run*, *block*); stall if in flight."""
        self._prefetched.discard((run, block))
        t = self._arrival.pop((run, block), None)
        arrival_rec = self._arrival_rec.pop((run, block), None)
        if t is not None and t > self.now:
            if self._trace is not None:
                # The stall's dep is the awaited disk op, whose end is
                # bit-equal to the stall's end (`now` jumps to it).
                self._cpu_tail = self._trace.add(
                    "read_stall", "cpu", self._dom, self.now, self.now, t,
                    dep=arrival_rec, attrs={"run": run, "block": block},
                )
            self.read_stall_ms += t - self.now
            self.now = t

    def on_write(self, disks: list[int]) -> None:
        """The writer emitted one output stripe on *disks*."""
        tracer = self.net.tracer
        if self.mode == "full":
            # Write-behind: M_W = 2D holds the stripe being filled plus
            # one in flight.  Submitting a new stripe requires the
            # previous one's frames back.
            if self._write_done > self.now:
                if self._trace is not None:
                    self._cpu_tail = self._trace.add(
                        "write_stall", "cpu", self._dom, self.now,
                        self.now, self._write_done,
                        dep=self._write_done_rec,
                    )
                self.write_stall_ms += self._write_done - self.now
                self.now = self._write_done
            if tracer is not None:
                tracer.issuer_dep = self._cpu_tail
            completes = self.net.submit(disks, self.now, kind="write")
            self._write_done = max(completes)
            if tracer is not None:
                self._write_done_rec = tracer.last_batch[
                    completes.index(self._write_done)
                ]
        else:
            if tracer is not None:
                tracer.issuer_dep = self._cpu_tail
            completes = self.net.submit(disks, self.now, kind="write")
            done = max(completes)
            if self._trace is not None and done > self.now:
                self._cpu_tail = self._trace.add(
                    "write_stall", "cpu", self._dom, self.now, self.now,
                    done, dep=tracer.last_batch[completes.index(done)],
                )
            self.write_stall_ms += done - self.now
            self.now = done
        self.writes += 1

    # -- latency-adaptive policy -------------------------------------------

    def slow_disks(self) -> tuple[int, ...]:
        """Disks the EWMA currently classifies as slow (empty if fixed)."""
        if self.latency is None or self.net.ewma is None:
            return ()
        return self.net.ewma.slow_disks(self.latency.slow_threshold)

    def disk_cost(self, disk: int) -> float:
        """Measured re-read penalty of *disk* (EWMA ms; 0.0 unless slow).

        Handed to :class:`~repro.core.schedule.MergeScheduler` as its
        ``flush_cost`` hook so flush victims bias toward blocks that
        will be re-read from fast disks.  Only disks the EWMA currently
        *classifies* as slow carry a penalty: while the farm looks
        homogeneous every disk costs 0.0 and the biased eviction reduces
        exactly to the Definition 6 highest-key choice.
        """
        ewma = self.net.ewma
        if ewma is None or disk not in self.slow_disks():
            return 0.0
        return ewma.cost(disk)

    def _slow_with_blocks(self, sched: "MergeScheduler") -> tuple[int, ...]:
        """Slow disks that still offer unfetched blocks to the merge."""
        return tuple(
            d for d in self.slow_disks()
            if sched.fds.smallest_block_on_disk(d) is not None
        )

    def _starved_slow(self, slow: tuple[int, ...], sched: "MergeScheduler") -> bool:
        """True when some slow disk sits idle with blocks still on it.

        This is the only state extra eagerness can improve: a backlogged
        straggler is already rate-limited by its own service time, and
        deepening the window then just raises ``M_R`` occupancy (more
        flushes, more re-reads) without feeding it any faster.
        """
        return any(
            self.net.disks[d].free_at <= self.now
            and sched.fds.smallest_block_on_disk(d) is not None
            for d in slow
        )

    # -- read-ahead --------------------------------------------------------

    def pump(self, sched: "MergeScheduler") -> int:
        """Issue eager case-2a reads while the read-ahead window has room.

        With an enabled :class:`~repro.core.config.LatencyAwareConfig`
        the window deepens by ``depth_boost`` ParReads while a slow disk
        still offers blocks (its long service hides behind more merge
        compute), and an eager-issue *floor* tops up after the window
        loop whenever a slow disk sits idle with blocks remaining — so a
        straggler's queue never starves the merge.  Both knobs are inert
        without the config: the fixed path issues exactly the same reads
        as before.

        Returns the number of ``ParRead`` operations issued.
        """
        lat = self.latency
        if self.mode == "none" or (self._window <= 0 and lat is None):
            return 0
        window = self._window
        slow: tuple[int, ...] = ()
        if lat is not None:
            slow = self._slow_with_blocks(sched)
            if slow and lat.depth_boost > 0 and self._starved_slow(slow, sched):
                window += lat.depth_boost * self.net.n_disks
                self.depth_boosts += 1
                self._m_depth_boosts.inc()
        issued = 0
        while len(self._prefetched) < window:
            self._eager_issue = True
            try:
                if not sched.maybe_prefetch():
                    break
            finally:
                self._eager_issue = False
            issued += 1
        if lat is not None and slow and lat.min_eager_per_pump > 0:
            for _ in range(lat.min_eager_per_pump):
                # Refill only while a slow disk is starved *now*: each
                # eager read services every disk with pending blocks, so
                # one check gates the batch.
                if not self._starved_slow(slow, sched):
                    break
                self._eager_issue = True
                try:
                    if not sched.maybe_prefetch():
                        break
                finally:
                    self._eager_issue = False
                issued += 1
                self.floor_issues += 1
                self._m_floor_issues.inc()
        return issued

    # -- completion --------------------------------------------------------

    def finish(self) -> OverlapReport:
        """Drain outstanding I/O and report the simulated timings."""
        makespan = max(self.now, self._write_done, self.net.drained_completion_ms())
        if self._trace is not None:
            self._trace.summary(self._dom, makespan)
        slow = self.slow_disks()
        if self.latency is not None:
            self._tel.gauge(ADAPTIVE_SLOW_DISKS).set(len(slow))
        self._tel.event(
            EV_OVERLAP_DISKS,
            makespan_ms=makespan,
            disks=self.net.per_disk_summary(makespan),
        )
        return OverlapReport(
            mode=self.mode,
            prefetch_depth=self.prefetch_depth,
            makespan_ms=makespan,
            cpu_busy_ms=self.cpu_busy_ms,
            read_stall_ms=self.read_stall_ms,
            write_stall_ms=self.write_stall_ms,
            io_busy_ms=self.net.busy_ms,
            disk_utilization=self.net.utilization(makespan),
            demand_reads=self.demand_reads,
            eager_reads=self.eager_reads,
            writes=self.writes,
            adaptive=self.latency is not None,
            depth_boosts=self.depth_boosts,
            floor_issues=self.floor_issues,
            slow_disks=slow,
        )
