"""Block-level simulation of a FULL SRM mergesort (no data movement).

`repro.core.simulator` makes one merge cheap; this module chains it
into the whole sort.  Keys are taken to be the ranks ``0..N-1`` (only
relative order matters), runs are represented by sorted rank arrays,
and each merge pass:

* derives every group's :class:`MergeJob` from block boundaries,
* replays the exact SRM schedule with the shared scheduler,
* produces the output runs as numpy merges (content, not I/O).

The result is the exact I/O trace of ``srm_mergesort`` on the same
input — verified by a cross-validation test — at a cost independent of
``B`` and linear in the number of blocks, so paper-scale sorts
(``N`` in the hundreds of millions of records with realistic ``B``)
are measurable on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..rng import RngLike, ensure_rng
from .config import SRMConfig
from .job import MergeJob
from .layout import LayoutStrategy, choose_start_disks
from .schedule import ScheduleStats
from .simulator import simulate_merge


@dataclass(frozen=True, slots=True)
class SimPassStats:
    """I/O counts of one simulated merge pass."""

    pass_index: int
    n_merges: int
    n_runs_in: int
    n_runs_out: int
    parallel_reads: int
    parallel_writes: int
    blocks_flushed: int


@dataclass
class SimSortResult:
    """I/O accounting of a simulated full sort."""

    config: SRMConfig
    n_records: int
    runs_formed: int
    formation_reads: int
    formation_writes: int
    passes: list[SimPassStats] = field(default_factory=list)
    merge_schedules: list[ScheduleStats] = field(default_factory=list)

    @property
    def n_merge_passes(self) -> int:
        return len(self.passes)

    @property
    def parallel_reads(self) -> int:
        return self.formation_reads + sum(p.parallel_reads for p in self.passes)

    @property
    def parallel_writes(self) -> int:
        return self.formation_writes + sum(p.parallel_writes for p in self.passes)

    @property
    def parallel_ios(self) -> int:
        return self.parallel_reads + self.parallel_writes

    @property
    def mean_overhead_v(self) -> float:
        """Mean measured per-merge read overhead across all merges."""
        if not self.merge_schedules:
            return 1.0
        return float(np.mean([s.overhead_v for s in self.merge_schedules]))


def _write_ops(n_blocks: int, n_disks: int) -> int:
    """Parallel writes for one cyclically striped run (perfect parallelism)."""
    return -(-n_blocks // n_disks)


def simulate_mergesort(
    keys_or_n: np.ndarray | int,
    config: SRMConfig,
    run_length: int | None = None,
    strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
    rng: RngLike = None,
    validate: bool = False,
) -> SimSortResult:
    """Simulate a full SRM sort's I/O schedule.

    Parameters
    ----------
    keys_or_n:
        Either an explicit key array (its rank order is used) or an
        integer ``N`` for a uniformly random permutation of ``N`` ranks
        drawn from *rng* — the average-case input.
    config / run_length / strategy / rng:
        As for :func:`repro.core.srm_mergesort`; run formation is the
        memory-load method (runs of ``run_length`` records, block
        aligned).
    """
    gen = ensure_rng(rng)
    if isinstance(keys_or_n, (int, np.integer)):
        ranks = gen.permutation(int(keys_or_n))
    else:
        keys = np.asarray(keys_or_n)
        if keys.size == 0:
            raise ConfigError("cannot sort an empty input")
        # Stable rank order reproduces the engines' tie handling.
        ranks = np.empty(keys.size, dtype=np.int64)
        ranks[np.argsort(keys, kind="stable")] = np.arange(keys.size)
    n = int(ranks.size)
    B, D, R = config.block_size, config.n_disks, config.merge_order
    length = run_length if run_length is not None else config.memory_records
    blocks_per_run = max(1, length // B)
    if length < B:
        raise ConfigError(f"run length {length} smaller than one block (B={B})")
    records_per_run = blocks_per_run * B

    # Run formation: sorted rank slices, in input order (stable).  Start
    # disks are drawn exactly as form_runs_load_sort draws them, so the
    # whole simulation replays srm_mergesort's randomness verbatim.
    arrays = [
        np.sort(ranks[i : i + records_per_run])
        for i in range(0, n, records_per_run)
    ]
    starts0 = choose_start_disks(len(arrays), D, strategy, gen)
    runs: list[tuple[np.ndarray, int]] = [
        (a, int(s)) for a, s in zip(arrays, starts0)
    ]
    n_blocks_total = -(-n // B)
    formation_reads = -(-n_blocks_total // D)
    formation_writes = sum(_write_ops(-(-a.size // B), D) for a in arrays)

    result = SimSortResult(
        config=config,
        n_records=n,
        runs_formed=len(runs),
        formation_reads=formation_reads,
        formation_writes=formation_writes,
    )

    pass_index = 0
    while len(runs) > 1:
        pass_index += 1
        groups = [runs[i : i + R] for i in range(0, len(runs), R)]
        out_runs: list[tuple[np.ndarray, int]] = []
        # One output start disk per group, drawn before merging — the
        # same single RNG call srm_mergesort makes per pass.
        starts_out = choose_start_disks(len(groups), D, strategy, gen)
        reads = writes = flushed = n_merges = 0
        for g, group in enumerate(groups):
            if len(group) == 1:
                out_runs.append(group[0])
                continue
            job = MergeJob.from_key_runs(
                [a for a, _ in group], B, D,
                start_disks=[s for _, s in group],
            )
            stats = simulate_merge(job, validate=validate)
            result.merge_schedules.append(stats)
            merged = np.sort(np.concatenate([a for a, _ in group]), kind="stable")
            out_runs.append((merged, int(starts_out[g])))
            reads += stats.total_reads
            writes += _write_ops(-(-merged.size // B), D)
            flushed += stats.blocks_flushed
            n_merges += 1
        result.passes.append(
            SimPassStats(
                pass_index=pass_index,
                n_merges=n_merges,
                n_runs_in=len(runs),
                n_runs_out=len(out_runs),
                parallel_reads=reads,
                parallel_writes=writes,
                blocks_flushed=flushed,
            )
        )
        runs = out_runs
    return result
