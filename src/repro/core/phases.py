"""Phase accounting (paper §6): ``I_0``, per-phase levels, Lemma 6.

The analysis splits a merge into *phases* of ``R`` blocks each, ordered
by participation index (Definition 7), and charges the reads of phase
``i`` to the maximum *level* ``L_i`` of the phase's blocks.  Lemma 8
overestimates ``L_i`` by ``L'_i`` — the maximum, over disks, of the
number of phase-``i`` blocks on one disk (all of the phase's blocks
placed on their original disks).  Because participation order equals
block-first-key order and cyclic striping maps each run's phase blocks
to a *chain* of consecutive disks, ``L'_i`` is exactly the maximum
occupancy of the dependent occupancy problem of §7.1 with ``R`` balls
and ``D`` bins — the reduction at the core of the paper.

These functions compute the quantities directly from a
:class:`MergeJob`, so measured read counts can be checked against
``I_0 + sum_i L'_i`` (Lemma 6) without instrumenting the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .job import MergeJob


def initial_load_reads(job: MergeJob) -> int:
    """``I_0``: parallel reads to load the R initial blocks (step 1).

    Equals the maximum number of starting disks coinciding — the
    classical occupancy of ``R`` balls (runs) in ``D`` bins (disks).
    """
    counts = np.bincount(job.start_disks, minlength=job.n_disks)
    return int(counts.max())


def participation_order(job: MergeJob) -> list[tuple[int, int]]:
    """Blocks of ``R_0`` (all blocks except each run's initial block),
    ordered by participation index (Definition 7).

    Participation order is the order in which blocks' first records
    become the *next record* of the merge, i.e. ascending block first
    key; ties broken by run id to match the engines' tie rule.
    """
    entries: list[tuple[float, int, int]] = []
    for r in range(job.n_runs):
        fk = job.first_keys[r]
        for b in range(1, fk.size):
            entries.append((int(fk[b]), r, b))
    entries.sort()
    return [(r, b) for _, r, b in entries]


def phase_occupancies(job: MergeJob) -> np.ndarray:
    """``L'_i`` for every phase: the dependent-occupancy maxima.

    Phase ``i`` (1-based in the paper) contains the blocks with
    participation indices ``((i-1)R, iR]``; its ``L'`` value is the
    maximum per-disk count of those blocks.  The final phase may hold
    fewer than ``R`` blocks.
    """
    order = participation_order(job)
    R = job.n_runs
    maxima: list[int] = []
    for lo in range(0, len(order), R):
        chunk = order[lo : lo + R]
        counts = np.zeros(job.n_disks, dtype=np.int64)
        for r, b in chunk:
            counts[job.disk_of(r, b)] += 1
        maxima.append(int(counts.max()))
    return np.asarray(maxima, dtype=np.int64)


def phase_chain_lengths(job: MergeJob) -> list[np.ndarray]:
    """Chain-length multiset of each phase's dependent occupancy problem.

    Within one phase, consecutive blocks of the same run form one chain
    (Definition 10); the chain lengths are what
    :func:`repro.occupancy.dependent_max_occupancy_samples` consumes to
    resample the phase's occupancy distribution.
    """
    order = participation_order(job)
    R = job.n_runs
    out: list[np.ndarray] = []
    for lo in range(0, len(order), R):
        chunk = order[lo : lo + R]
        per_run: dict[int, int] = {}
        for r, _ in chunk:
            per_run[r] = per_run.get(r, 0) + 1
        out.append(np.asarray(sorted(per_run.values()), dtype=np.int64))
    return out


@dataclass(frozen=True, slots=True)
class PhaseBound:
    """The Lemma 6 read bound and its components."""

    initial_reads: int
    phase_levels: np.ndarray

    @property
    def total(self) -> int:
        """``I_0 + sum_i L'_i`` — an upper bound on total parallel reads."""
        return self.initial_reads + int(self.phase_levels.sum())

    @property
    def n_phases(self) -> int:
        return int(self.phase_levels.size)


def lemma6_read_bound(job: MergeJob) -> PhaseBound:
    """Upper bound on the schedule's total parallel reads (Lemma 6 + 8)."""
    return PhaseBound(
        initial_reads=initial_load_reads(job),
        phase_levels=phase_occupancies(job),
    )
