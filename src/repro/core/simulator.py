"""Fast block-level SRM merge simulator (no record movement).

Drives the exact same :class:`MergeScheduler` as the data-moving merger,
but from a pre-sorted event stream instead of actual record
consumption.  The equivalence rests on one observation: with distinct
keys, records are consumed in globally sorted order, so

* a block *begins participating* (must be resident) exactly when its
  first key's turn arrives, and
* a leading block is *depleted* exactly when its last key's turn
  arrives.

Sorting all ``(first_key, participation)`` and ``(last_key, depletion)``
events by key therefore replays the merge's scheduler-visible behaviour
precisely, at ``O(total_blocks · log)`` cost independent of ``B`` — the
paper's Table 3 grid (millions of blocks) becomes reachable where
per-record simulation would not be.

With duplicate keys the event order may differ from the engine's
run-id tie-breaking; counts remain valid SRM executions but exact
engine/simulator equality is only guaranteed for distinct keys.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScheduleError
from .job import MergeJob
from .schedule import MergeScheduler, ScheduleStats

#: Event kinds, ordered so participation precedes depletion at key ties.
_PARTICIPATE = 0
_DEPLETE = 1


def build_event_stream(job: MergeJob) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sorted event stream ``(keys, kinds, runs, blocks)`` for *job*.

    Participation events exist for every block except each run's block 0
    (those are loaded by step 1); depletion events exist for every block.
    """
    keys_parts: list[np.ndarray] = []
    kind_parts: list[np.ndarray] = []
    run_parts: list[np.ndarray] = []
    block_parts: list[np.ndarray] = []
    for r in range(job.n_runs):
        fk = job.first_keys[r]
        lk = job.last_keys[r]
        n = fk.size
        if n > 1:
            keys_parts.append(fk[1:])
            kind_parts.append(np.full(n - 1, _PARTICIPATE, dtype=np.int8))
            run_parts.append(np.full(n - 1, r, dtype=np.int64))
            block_parts.append(np.arange(1, n, dtype=np.int64))
        keys_parts.append(lk)
        kind_parts.append(np.full(n, _DEPLETE, dtype=np.int8))
        run_parts.append(np.full(n, r, dtype=np.int64))
        block_parts.append(np.arange(n, dtype=np.int64))
    keys = np.concatenate(keys_parts)
    kinds = np.concatenate(kind_parts)
    runs = np.concatenate(run_parts)
    blocks = np.concatenate(block_parts)
    order = np.lexsort((runs, kinds, keys))
    return keys[order], kinds[order], runs[order], blocks[order]


def simulate_merge(
    job: MergeJob,
    validate: bool = False,
    prefetch: bool = False,
) -> ScheduleStats:
    """Simulate one SRM merge of *job*'s runs; return its I/O counts.

    Parameters
    ----------
    job:
        Block boundaries and layout of the runs to merge.
    validate:
        Enable the scheduler's run-time invariant checks (slower).
    prefetch:
        Also issue eager case-2a reads after every event, modelling the
        I/O-compute overlap mode (never flushes; see
        :meth:`MergeScheduler.maybe_prefetch`).
    """
    sched = MergeScheduler(job, validate=validate)
    sched.initial_load()
    _, kinds, runs, blocks = build_event_stream(job)
    leading = sched.leading
    ensure = sched.ensure_resident
    deplete = sched.on_leading_depleted
    for kind, r, b in zip(kinds.tolist(), runs.tolist(), blocks.tolist()):
        if kind == _PARTICIPATE:
            ensure(r, b)
        else:
            if validate and leading[r] != b:
                raise ScheduleError(
                    f"depletion of ({r}, {b}) but leading block is {leading[r]}"
                )
            deplete(r)
        if prefetch:
            sched.maybe_prefetch()
    if not sched.finished():
        raise ScheduleError("event stream ended before all runs were exhausted")
    return sched.stats()
