"""The data-moving SRM merge (paper §5): R-way merge on real disks.

This engine performs the merge end-to-end on a
:class:`ParallelDiskSystem`: forecast-format input runs are read by the
shared :class:`MergeScheduler`'s ``ParRead`` decisions, records flow
through a chunked internal merge, and the output run is streamed to disk
with perfect write parallelism.

Internal merge processing is chunked: the run owning the globally
smallest leading record is consumed up to (exclusive) the next
competitor's key in one ``searchsorted`` step, so internal work is
``O(switches · log B)`` rather than per-record Python.

The merger learns a non-resident leading block's first key *only*
through the forecasting structure (``min_i H_i[run]``, Definition 1's
"smallest block of the run") — the information a real implementation
would have — never by peeking at run metadata.

When an :class:`~repro.core.config.OverlapConfig` is supplied, an
:class:`~repro.core.events.OverlapEngine` advances reads, writes, and
the chunked merge compute on a shared simulated clock — read-ahead and
write-behind overlap I/O with computation instead of stalling on every
``ParRead`` — and the result carries the measured
:class:`~repro.core.events.OverlapReport`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from ..disks.block import NO_KEY
from ..disks.counters import IOStats
from ..disks.files import StripedRun
from ..disks.system import ParallelDiskSystem
from ..disks.timing import DISK_1996, DiskTimingModel
from ..errors import ConfigError, DataError, ScheduleError
from ..telemetry import TELEMETRY_OFF
from ..telemetry.schema import SPAN_MERGE
from .config import OverlapConfig
from .events import OverlapEngine, OverlapReport
from .job import MergeJob
from .losertree import merge_loop_batched, merge_loop_cycles
from .schedule import MergeScheduler, ScheduleStats
from .writer import RunWriter

#: Recognized internal-merge implementations (see :func:`merge_runs`).
MERGERS = ("auto", "losertree", "heapq")


@dataclass(frozen=True, slots=True)
class MergeResult:
    """Outcome of one SRM merge.

    Attributes
    ----------
    output:
        The merged, forecast-format striped run.
    schedule:
        Scheduler-level I/O counts (``I_0``, ParReads, flushes).
    io:
        Disk-system counters accumulated by this merge (reads include
        the initial load; writes are the output run's stripes).
    n_records:
        Records merged.
    """

    output: StripedRun
    schedule: ScheduleStats
    io: IOStats
    n_records: int
    #: Heap cycles of the chunked internal merge (one per consumed key
    #: range; ``O(switches)``, not ``O(records)``, even with duplicates).
    heap_cycles: int = 0
    #: Simulated-time report when an overlap engine drove the merge.
    overlap: "OverlapReport | None" = None


def merge_runs(
    system: ParallelDiskSystem,
    runs: list[StripedRun],
    output_run_id: int,
    output_start_disk: int,
    validate: bool = False,
    prefetch: bool = False,
    free_inputs: bool = True,
    overlap: OverlapConfig | None = None,
    timing: DiskTimingModel | None = None,
    merger: str = "auto",
    telemetry=None,
) -> MergeResult:
    """Merge *runs* into one striped run on *system*.

    Parameters
    ----------
    system:
        The parallel disk system holding the input runs.
    runs:
        Forecast-format striped input runs (``R = len(runs)`` is the
        merge order of this step).
    output_run_id / output_start_disk:
        Identity and layout of the output run.
    validate:
        Enable scheduler invariant checks plus forecast-implant
        verification on every block read.
    prefetch:
        Issue eager case-2a reads after each block switch (the legacy
        untimed overlap mode; superseded by *overlap*).
    free_inputs:
        Release each input block's disk slot once fully consumed.
    overlap:
        When given, an :class:`OverlapEngine` advances reads, writes,
        and chunked merge compute on a shared simulated clock; the
        result carries its :class:`OverlapReport`.  The engine changes
        *when* operations complete, never *what* is read or written.
    timing:
        Disk service-time model for the engine (default
        :data:`~repro.disks.timing.DISK_1996`).
    telemetry:
        A :class:`~repro.telemetry.Telemetry` instance; when given, the
        merge runs inside a ``merge`` span carrying scheduler counts and
        (for engine-driven merges) the overlap report, and the hot-path
        histograms (read width, flush occupancy, drain batch size) fill
        the shared registry.  ``None`` uses the zero-overhead null layer.
    merger:
        Internal-merge implementation.  ``"losertree"`` (and the
        ``"auto"`` default) use the vectorized data plane of
        :mod:`repro.core.losertree`: block-slice batching on the pure
        demand path, a cycle-granular loser tree when an overlap engine
        or eager prefetch paces the merge.  ``"heapq"`` is the original
        heap loop, kept as the reference/baseline.  All mergers produce
        identical I/O schedules and identical output records.
    """
    if merger not in MERGERS:
        raise ConfigError(f"merger must be one of {MERGERS}, got {merger!r}")
    if len(runs) < 2:
        raise DataError(f"a merge needs at least 2 runs, got {len(runs)}")
    job = MergeJob.from_striped_runs(runs, system.n_disks)
    start_stats = system.stats.snapshot()
    tel = telemetry if telemetry is not None else TELEMETRY_OFF
    span = tel.span(
        SPAN_MERGE,
        system=system,
        n_runs=len(runs),
        n_blocks=job.n_blocks,
        n_disks=system.n_disks,
    )

    eng: OverlapEngine | None = None
    if overlap is not None:
        eng = OverlapEngine(
            timing if timing is not None else DISK_1996,
            system.block_size,
            system.n_disks,
            overlap.cpu_us_per_record,
            mode=overlap.mode,
            prefetch_depth=overlap.prefetch_depth,
            telemetry=telemetry,
            faults=system.faults,
            job_tag=overlap.job_tag,
            latency=overlap.latency,
        )

    # Resident block contents: (keys, payloads-or-None).
    block_data: dict[tuple[int, int], tuple[np.ndarray, np.ndarray | None]] = {}

    def on_read(ops: list[tuple[int, int, int]]) -> None:
        addrs = [runs[r].addresses[b] for r, b, _ in ops]
        blocks = system.read_stripe(addrs)
        for (r, b, _d), blk in zip(ops, blocks):
            if validate:
                _check_forecast(job, r, b, blk.forecast)
            block_data[(r, b)] = (blk.keys, blk.payloads)
        if eng is not None:
            # The scheduler speaks logical disks; queue the requests on
            # the *physical* spindles (identical fault-free, relocated
            # onto survivors in degraded mode — colliding requests then
            # serialize on the survivor's FIFO, which is the overhead).
            eng.on_parread(
                [
                    (r, b, system.resolve(a).disk)
                    for (r, b, _d), a in zip(ops, addrs)
                ]
            )

    def on_flush(evicted: list[tuple[int, int]]) -> None:
        # Definition 6: flushing is virtual — drop the copy; the block
        # stays live on disk and will be re-read when needed.
        for r, b in evicted:
            del block_data[(r, b)]
        if eng is not None:
            eng.on_flush(evicted)

    sched = MergeScheduler(
        job,
        validate=validate,
        on_read=on_read,
        on_flush=on_flush,
        telemetry=telemetry,
        # Latency-adaptive flush bias: the engine's per-disk EWMA prices
        # re-reads, so victims come back from fast disks.  None (the
        # fixed path) keeps Definition 6 eviction bit-identical.
        flush_cost=eng.disk_cost if eng is not None and eng.latency is not None
        else None,
    )
    sched.initial_load()
    writer = RunWriter(
        system,
        output_run_id,
        output_start_disk,
        on_write=eng.on_write if eng is not None else None,
        telemetry=telemetry,
    )

    if merger == "heapq":
        heap_cycles = _merge_loop_heapq(
            sched, writer, block_data, runs, system, free_inputs, validate,
            eng, prefetch,
        )
    elif eng is not None or prefetch:
        heap_cycles = merge_loop_cycles(
            sched, writer, block_data, runs, system, free_inputs, validate,
            eng, prefetch, telemetry=telemetry,
        )
    else:
        heap_cycles = merge_loop_batched(
            sched, writer, block_data, runs, system, free_inputs, validate,
            telemetry=telemetry,
        )

    if not sched.finished():
        raise ScheduleError("merge loop ended with unexhausted runs")
    output = writer.finalize()
    n_records = sum(r.n_records for r in runs)
    if output.n_records != n_records:
        raise ScheduleError(
            f"merged {output.n_records} records, expected {n_records}"
        )
    if validate and writer.max_buffered_blocks > 2 * system.n_disks:
        raise ScheduleError(
            f"output buffer used {writer.max_buffered_blocks} blocks,"
            f" exceeding M_W = 2D = {2 * system.n_disks}"
        )
    schedule = sched.stats()
    report = eng.finish() if eng is not None else None
    span.set(
        initial_reads=schedule.initial_reads,
        merge_parreads=schedule.merge_parreads,
        flush_ops=schedule.flush_ops,
        blocks_flushed=schedule.blocks_flushed,
        max_mr_occupied=schedule.max_mr_occupied,
        heap_cycles=heap_cycles,
    )
    if report is not None:
        span.set(
            makespan_ms=report.makespan_ms,
            cpu_busy_ms=report.cpu_busy_ms,
            read_stall_ms=report.read_stall_ms,
            write_stall_ms=report.write_stall_ms,
            disk_utilization=report.disk_utilization,
            eager_reads=report.eager_reads,
            demand_reads=report.demand_reads,
        )
        if report.adaptive:
            span.set(
                adaptive=True,
                depth_boosts=report.depth_boosts,
                floor_issues=report.floor_issues,
                flush_redirects=sched.flush_redirects,
                slow_disks=list(report.slow_disks),
            )
    span.close()
    return MergeResult(
        output=output,
        schedule=schedule,
        io=system.stats.since(start_stats),
        n_records=n_records,
        heap_cycles=heap_cycles,
        overlap=report,
    )


def _merge_loop_heapq(
    sched: MergeScheduler,
    writer: RunWriter,
    block_data: dict,
    runs: list[StripedRun],
    system: ParallelDiskSystem,
    free_inputs: bool,
    validate: bool,
    eng: OverlapEngine | None,
    prefetch: bool,
) -> int:
    """The original heap-driven merge loop (reference/baseline merger)."""
    job = sched.job
    R = job.n_runs
    offsets = [0] * R
    heap: list[tuple[int, int]] = [
        (int(job.first_keys[r][0]), r) for r in range(R)
    ]
    heapq.heapify(heap)

    heap_cycles = 0
    while heap:
        heap_cycles += 1
        key, r = heapq.heappop(heap)
        limit = heap[0][0] if heap else None
        b = sched.leading[r]
        sched.ensure_resident(r, b)
        if eng is not None:
            eng.wait_for(r, b)
        data, pay = block_data[(r, b)]
        off = offsets[r]
        if validate and int(data[off]) != key:
            raise ScheduleError(
                f"merge heap desync: expected key {key}, found {int(data[off])}"
            )
        if limit is None:
            hi = data.size
        else:
            hi = int(np.searchsorted(data, limit, side="left"))
            if hi <= off:
                # Duplicate keys across runs (key == limit): every record
                # equal to *key* in this block may be emitted now, and the
                # heap's run-index tie-break would hand the turn straight
                # back to this run anyway.  Consume the whole equal-key
                # prefix in one step instead of one record per heap cycle.
                hi = int(np.searchsorted(data, key, side="right"))
        writer.append(data[off:hi], None if pay is None else pay[off:hi])
        if eng is not None:
            eng.compute(hi - off)

        if hi == data.size:
            del block_data[(r, b)]
            if free_inputs:
                system.free(runs[r].addresses[b])
            sched.on_leading_depleted(r)
            offsets[r] = 0
            if not sched.run_exhausted(r):
                nb = sched.leading[r]
                if sched.is_resident(r, nb):
                    nxt = int(block_data[(r, nb)][0][0])
                else:
                    # Forecast knowledge: min_i H_i[r] is the first key
                    # of the run's earliest on-disk (= leading) block.
                    fk = sched.fds.next_block_key_of_run(r)
                    if fk == NO_KEY or math.isinf(fk):
                        raise ScheduleError(
                            f"run {r} not exhausted but FDS sees no block"
                        )
                    nxt = int(fk)
                heapq.heappush(heap, (nxt, r))
        else:
            offsets[r] = hi
            heapq.heappush(heap, (int(data[hi]), r))

        if eng is not None:
            eng.pump(sched)
        elif prefetch:
            sched.maybe_prefetch()
    return heap_cycles


def _check_forecast(
    job: MergeJob, run: int, block: int, forecast: tuple[float, ...]
) -> None:
    """Verify a block's implanted keys match the §4 format."""
    fk = job.first_keys[run]
    if block == 0:
        expect = tuple(
            int(fk[j]) if j < fk.size else NO_KEY for j in range(job.n_disks)
        )
    else:
        j = block + job.n_disks
        expect = (int(fk[j]) if j < fk.size else NO_KEY,)
    if forecast != expect:
        raise DataError(
            f"run {run} block {block}: forecast {forecast} != expected {expect}"
        )
