"""Run-placement strategies: where each run's block 0 lands (paper §3, §8).

SRM's only randomization is the choice of the starting disk ``d_r`` of
each run — everything downstream (cyclic striping, forecasting, the
merge itself) is deterministic.  Alternative strategies exist for
analysis and ablation:

* ``RANDOMIZED`` — the paper's SRM: each ``d_r`` i.i.d. uniform.
* ``STAGGERED`` — the deterministic §8 variant: runs are spread evenly,
  ``d_r = floor(r / ceil(R/D))``-style staggering so consecutive runs
  start on the same disk in balanced groups (the paper's
  ``d_r = 0 for r < R/D, d_r = 1 for r < 2R/D, ...``).
* ``ROUND_ROBIN`` — ``d_r = r mod D``: maximal per-run stagger, the
  natural "obvious" deterministic choice.
* ``WORST_CASE`` — every run starts on disk 0: the §3 adversary for
  which deterministic striping degrades to ``1/D`` of the I/O
  bandwidth whenever runs deplete in lockstep.
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import ConfigError
from ..rng import RngLike, ensure_rng


class LayoutStrategy(enum.Enum):
    """How run starting disks are chosen."""

    RANDOMIZED = "randomized"
    STAGGERED = "staggered"
    ROUND_ROBIN = "round_robin"
    WORST_CASE = "worst_case"


def choose_start_disks(
    n_runs: int,
    n_disks: int,
    strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
    rng: RngLike = None,
) -> np.ndarray:
    """Pick a starting disk for each of *n_runs* runs.

    Returns an int64 array ``d`` with ``0 <= d[r] < n_disks``.
    """
    if n_runs < 0:
        raise ConfigError(f"n_runs must be >= 0, got {n_runs}")
    if n_disks < 1:
        raise ConfigError(f"need at least one disk, got {n_disks}")
    if strategy is LayoutStrategy.RANDOMIZED:
        return ensure_rng(rng).integers(0, n_disks, size=n_runs, dtype=np.int64)
    if strategy is LayoutStrategy.STAGGERED:
        # Balanced groups: runs 0..ceil(R/D)-1 on disk 0, the next group
        # on disk 1, etc. (§8's "uniformly staggered" placement).
        group = max(1, -(-n_runs // n_disks))
        return (np.arange(n_runs, dtype=np.int64) // group) % n_disks
    if strategy is LayoutStrategy.ROUND_ROBIN:
        return np.arange(n_runs, dtype=np.int64) % n_disks
    if strategy is LayoutStrategy.WORST_CASE:
        return np.zeros(n_runs, dtype=np.int64)
    raise ConfigError(f"unknown layout strategy: {strategy!r}")
