"""repro — Simple Randomized Mergesort on Parallel Disks.

A from-scratch Python reproduction of Barve, Grove & Vitter's SRM
external sorting algorithm (SPAA 1996), including the Vitter–Shriver
parallel disk substrate, the DSM baseline, the occupancy theory behind
the analysis, and a harness regenerating every table and figure of the
paper's evaluation.

Quickstart::

    import numpy as np
    from repro import SRMConfig, srm_sort

    cfg = SRMConfig.from_k(k=4, n_disks=4, block_size=32)
    out, result = srm_sort(np.random.default_rng(0).permutation(100_000), cfg, rng=1)
    print(result.io)

Subpackages
-----------
``repro.core``
    SRM itself: config, layout, forecasting, scheduler, merger,
    simulator, run formation, mergesort driver, phase accounting.
``repro.disks``
    The simulated D-disk parallel I/O system.
``repro.baselines``
    Disk-striped mergesort (DSM) and the single-disk baseline.
``repro.occupancy``
    Classical/dependent maximum occupancy: sampling, exact, bounds.
``repro.analysis``
    §9 formulas and Tables 1–4 / Figure 1 regeneration.
``repro.workloads``
    Average-case and adversarial input generators.
``repro.verify``
    Sortedness/permutation/on-disk-format checks.
``repro.telemetry``
    Metrics registry, phase spans, JSONL traces, ``repro inspect``.
``repro.faults``
    Deterministic fault injection: retrying disk service, degraded-mode
    operation after disk loss, and the ``repro chaos`` harness.
"""

from ._version import __version__
from .baselines import DSMSortResult, dsm_mergesort, dsm_sort, single_disk_sort
from .core import (
    DSMConfig,
    LayoutStrategy,
    LoserTree,
    MERGERS,
    MergeJob,
    MergeScheduler,
    ScheduleStats,
    SortResult,
    SRMConfig,
    lemma6_read_bound,
    merge_runs,
    simulate_merge,
    sort_records_on_system,
    srm_mergesort,
    srm_sort,
)
from .disks import (
    Block,
    BlockAddress,
    DiskTimingModel,
    IOStats,
    ParallelDiskSystem,
    StripedFile,
    StripedRun,
)
from .faults import (
    ChaosReport,
    CircuitBreaker,
    DiskDeath,
    FaultPlan,
    RetryPolicy,
    StallWindow,
    run_chaos,
)
from .sorting import ExternalSortStats, external_sort, external_sort_records
from .telemetry import (
    MetricsRegistry,
    RunReport,
    Telemetry,
    TELEMETRY_OFF,
)
from .errors import (
    ChecksumError,
    ConfigError,
    DataError,
    DiskDeadError,
    DiskError,
    DiskFullError,
    InvalidIOError,
    ReproError,
    ScheduleError,
)

__all__ = [
    "__version__",
    "DSMSortResult",
    "dsm_mergesort",
    "dsm_sort",
    "single_disk_sort",
    "DSMConfig",
    "LayoutStrategy",
    "LoserTree",
    "MERGERS",
    "MergeJob",
    "MergeScheduler",
    "ScheduleStats",
    "SortResult",
    "SRMConfig",
    "lemma6_read_bound",
    "merge_runs",
    "simulate_merge",
    "sort_records_on_system",
    "srm_mergesort",
    "srm_sort",
    "Block",
    "BlockAddress",
    "DiskTimingModel",
    "IOStats",
    "ParallelDiskSystem",
    "StripedFile",
    "StripedRun",
    "ChecksumError",
    "ConfigError",
    "DataError",
    "DiskDeadError",
    "DiskError",
    "DiskFullError",
    "InvalidIOError",
    "ReproError",
    "ScheduleError",
    "ChaosReport",
    "CircuitBreaker",
    "DiskDeath",
    "FaultPlan",
    "RetryPolicy",
    "StallWindow",
    "run_chaos",
    "ExternalSortStats",
    "external_sort",
    "external_sort_records",
    "MetricsRegistry",
    "RunReport",
    "Telemetry",
    "TELEMETRY_OFF",
]
