"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration is invalid or inconsistent.

    Raised, for example, when the memory size ``M`` is too small to support
    any merge order, or when ``D < 1``.
    """


class DiskError(ReproError):
    """Base class for failures of the simulated parallel disk system."""


class DiskFullError(DiskError):
    """A disk with finite capacity has no free slots left."""


class InvalidIOError(DiskError):
    """A parallel I/O request violates the D-disk model.

    The Vitter–Shriver model allows at most one block to be transferred
    to or from **each** disk per parallel I/O operation.  Requests that
    address the same disk twice in one operation, read unallocated slots,
    or overwrite live blocks raise this error.
    """


class ChecksumError(DiskError):
    """A block read back from disk failed its checksum verification.

    Raised only when corruption survives every retry the
    :class:`~repro.faults.retry.RetryPolicy` allows; a single corrupted
    transfer is retried, not raised.
    """


class DiskDeadError(DiskError):
    """An operation targets a disk that has permanently failed.

    Degraded mode normally remaps dead-disk blocks onto the surviving
    spindles transparently; this error surfaces only when no survivor
    exists (every disk has died) or a fault plan kills the sole disk of
    a D = 1 system.
    """


class ScheduleError(ReproError):
    """The SRM I/O scheduler detected an invariant violation.

    In ``validate`` mode the scheduler checks the paper's lemmas at run
    time (leading blocks are never flushed, a stalled-on block is fetched
    by a single ``ParRead``, buffer budgets are never exceeded).  Any
    violation — which would indicate an implementation bug, not a user
    error — raises this exception.
    """


class DataError(ReproError):
    """Input data does not satisfy a documented precondition.

    For example: a run supplied to the merger is not sorted, or a
    simulator job contains non-increasing block key boundaries.
    """
