"""Multi-tenant sort service: many concurrent jobs, one shared disk farm.

The ROADMAP's production north star: a job-queue + executor subsystem
that serves many concurrent :func:`~repro.core.srm_sort`-equivalent
jobs over one shared :class:`~repro.disks.ParallelDiskSystem`.  A
5-phase admission pipeline (modeled on coreblocks' scheduler split:
validate/quota -> tenant sub-pool reservation -> queue slot -> select
-> dispatch) feeds a round-interleaving executor: each scheduling
quantum a fairness policy picks which job's next ParRead/flush round
runs on the shared disks.  Every tenant's output, ScheduleStats, and
IOStats stay bit-identical to a solo ``srm_sort`` with the same seed —
contention moves *when* rounds run, never *what* they do.
"""

from .admission import ADMIT, PHASES, REJECT, WAIT, AdmissionPipeline
from .driver import JobAborted, JobDriver, RoundGate
from .executor import ServiceConfig, SortService, run_arrival_script
from .jobs import JobSpec, ServiceJob, TenantSpec
from .policy import (
    POLICIES,
    FairnessPolicy,
    RoundRobinPolicy,
    ShortestRemainingIOPolicy,
    WeightedFairPolicy,
    make_policy,
)
from .report import JobReport, ServiceResult, solo_reference

__all__ = [
    "ADMIT",
    "PHASES",
    "REJECT",
    "WAIT",
    "AdmissionPipeline",
    "JobAborted",
    "JobDriver",
    "RoundGate",
    "ServiceConfig",
    "SortService",
    "run_arrival_script",
    "JobSpec",
    "ServiceJob",
    "TenantSpec",
    "POLICIES",
    "FairnessPolicy",
    "RoundRobinPolicy",
    "ShortestRemainingIOPolicy",
    "WeightedFairPolicy",
    "make_policy",
    "JobReport",
    "ServiceResult",
    "solo_reference",
]
