"""Job and tenant descriptions for the multi-tenant sort service.

A :class:`JobSpec` is the immutable request — whose keys to sort, with
what geometry, arriving when.  A :class:`ServiceJob` is the executor's
mutable runtime record for one admitted spec: admission phase, reserved
frames, per-job I/O counters, and the gated driver thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import SRMConfig
from ..disks.counters import IOStats
from ..errors import ConfigError
from ..memory.pool import BufferPool
from ..workloads.arrivals import JobArrival

#: Job lifecycle states.
QUEUED = "queued"  #: submitted, arrival time not reached / not admitted
WAITING = "waiting"  #: due, but blocked on tenant frames or a queue slot
RUNNING = "running"  #: admitted; driver thread parked between rounds
COMPLETED = "completed"
REJECTED = "rejected"  #: failed validation (geometry / quota violation)
ABORTED = "aborted"  #: cancelled mid-run; resources reclaimed

JOB_STATES = (QUEUED, WAITING, RUNNING, COMPLETED, REJECTED, ABORTED)


@dataclass(frozen=True, slots=True)
class TenantSpec:
    """One tenant's share of the service.

    ``quota_frames`` is the tenant's carve-out of internal-memory
    frames; ``None`` lets the service pick a default (enough for
    ``default_jobs`` concurrent jobs of the service's base geometry).
    ``weight`` drives the weighted-fair policy and defaults to 1.
    """

    name: str
    weight: float = 1.0
    quota_frames: int | None = None
    default_jobs: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant needs a non-empty name")
        if not self.weight > 0.0:
            raise ConfigError(
                f"tenant {self.name!r}: weight must be positive, got {self.weight}"
            )
        if self.quota_frames is not None and self.quota_frames <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: quota must be positive, "
                f"got {self.quota_frames}"
            )
        if self.default_jobs < 1:
            raise ConfigError(
                f"tenant {self.name!r}: default_jobs must be >= 1"
            )


@dataclass(frozen=True)
class JobSpec:
    """An immutable sort request.

    ``seed`` drives the job's layout randomness (run start disks); the
    same keys + seed + config always produce bit-identical output,
    schedules, and I/O counters whether the job runs solo or inside the
    service — that invariant is the service's core guarantee.
    """

    job_id: str
    tenant: str
    keys: np.ndarray
    config: SRMConfig
    arrival_ms: float = 0.0
    seed: int = 0
    run_length: int | None = None
    formation: str = "load_sort"
    merger: str = "auto"
    validate: bool = False

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigError("job needs a non-empty job_id")
        if not self.tenant:
            raise ConfigError(f"job {self.job_id!r} needs a tenant")
        if self.arrival_ms < 0:
            raise ConfigError(
                f"job {self.job_id!r}: arrival must be >= 0, got {self.arrival_ms}"
            )
        object.__setattr__(
            self, "keys", np.asarray(self.keys, dtype=np.int64)
        )
        if self.keys.size == 0:
            raise ConfigError(f"job {self.job_id!r} has no records to sort")

    @property
    def n_records(self) -> int:
        return int(self.keys.size)

    @property
    def frames_needed(self) -> int:
        """Internal-memory frames this job holds for its lifetime.

        One full §5.1 partition — ``2R + 4D`` frames — for the job's
        own merge order.
        """
        return BufferPool(self.config.merge_order, self.config.n_disks).total_frames

    @classmethod
    def from_arrival(cls, arrival: JobArrival, config: SRMConfig) -> "JobSpec":
        """Materialize an arrival-script row into a runnable spec.

        The row's seed derives both the input keys and (offset by one so
        the two streams never alias) the layout randomness.
        """
        gen = np.random.default_rng(arrival.seed)
        keys = gen.integers(0, 2**40, size=arrival.n_records, dtype=np.int64)
        return cls(
            job_id=arrival.job_id,
            tenant=arrival.tenant,
            keys=keys,
            config=config,
            arrival_ms=arrival.arrival_ms,
            seed=arrival.seed + 1,
        )


@dataclass
class ServiceJob:
    """Mutable executor-side state for one submitted :class:`JobSpec`."""

    spec: JobSpec
    state: str = QUEUED
    #: Order of admission; fairness policies key their cycles off this.
    admission_index: int | None = None
    #: Frames currently reserved from the tenant partition (0 after release).
    reserved_frames: int = 0
    slot: int | None = None
    driver: object | None = None  # JobDriver once admitted
    #: Exact per-job I/O: the sum of counter deltas of this job's rounds.
    io: IOStats = field(default=None)  # type: ignore[assignment]
    #: Scheduling quanta granted (each = one charged parallel-I/O round).
    rounds: int = 0
    #: Simulated clock time consumed by this job's rounds.
    busy_ms: float = 0.0
    admitted_ms: float | None = None
    first_round_ms: float | None = None
    completed_ms: float | None = None
    #: Failed admission attempts spent waiting on frames or a slot.
    quota_waits: int = 0
    error: str | None = None

    def __post_init__(self) -> None:
        if self.io is None:
            self.io = IOStats(self.spec.config.n_disks)

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def weight(self) -> float:
        # Resolved at admission from the tenant partition; 1.0 before.
        return self._weight if hasattr(self, "_weight") else 1.0

    @weight.setter
    def weight(self, value: float) -> None:
        self._weight = value

    @property
    def done(self) -> bool:
        return self.driver is not None and self.driver.done

    @property
    def wait_ms(self) -> float | None:
        """Queueing delay: arrival to first granted round."""
        if self.first_round_ms is None:
            return None
        return self.first_round_ms - self.spec.arrival_ms

    @property
    def makespan_ms(self) -> float | None:
        """Arrival to completion on the shared clock."""
        if self.completed_ms is None:
            return None
        return self.completed_ms - self.spec.arrival_ms
