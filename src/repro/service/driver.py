"""Round-steppable execution of one sort job on a shared disk system.

The SRM driver (:func:`~repro.core.sort_records_on_system`) is a deep
recursive pipeline — run formation, merge passes, forecasting — with no
natural yield points.  Rather than invert it into a coroutine, the
service runs each job's driver on a parked worker thread and gates it
through ``ParallelDiskSystem.round_hook``: the hook fires immediately
before every *charged* stripe operation, and the gate blocks there
until the executor grants the job its next scheduling quantum.

Strictly one thread runs at a time — the executor blocks inside
:meth:`RoundGate.grant` until the job parks again — so the shared
system sees exactly the serial op sequence a solo run would issue, just
interleaved with other jobs' rounds.  Determinism is preserved by
construction: no two drivers ever touch the system concurrently.
"""

from __future__ import annotations

import threading

from ..core.mergesort import sort_records_on_system
from ..disks.system import ParallelDiskSystem
from ..errors import ReproError
from .jobs import JobSpec


class JobAborted(ReproError):
    """Raised inside a job's driver thread when the service cancels it."""


class RoundGate:
    """Two-event handshake serializing a driver thread with the executor.

    ``_parked`` is set while the job thread is blocked waiting for its
    turn (or finished); ``_turn`` is set while the job owns the system.
    The executor's :meth:`grant` releases the thread for exactly one
    round and returns only once it has parked again, so at any instant
    at most one of the two sides is running.
    """

    __slots__ = ("_turn", "_parked", "_cancelled")

    def __init__(self) -> None:
        self._turn = threading.Event()
        self._parked = threading.Event()
        self._cancelled = False

    # -- job-thread side ----------------------------------------------

    def wait_turn(self) -> None:
        """Park until the executor grants the next round.

        Installed as ``system.round_hook`` while this job is granted;
        also called explicitly as the driver thread's first action so
        input installation happens inside the first quantum.
        """
        self._parked.set()
        self._turn.wait()
        self._turn.clear()
        if self._cancelled:
            raise JobAborted("job cancelled by the service")

    # -- executor side ------------------------------------------------

    def grant(self) -> None:
        """Release the job for one round; block until it parks again."""
        self._parked.clear()
        self._turn.set()
        self._parked.wait()

    def cancel(self) -> None:
        """Abort the job: its next ``wait_turn`` raises :class:`JobAborted`.

        Blocks until the thread has unwound (the driver's ``finally``
        re-parks), so resource reclamation afterwards is race-free.
        """
        self._cancelled = True
        self.grant()


class JobDriver:
    """One job's sort pipeline on a daemon thread, stepped round by round.

    The thread's first action is ``gate.wait_turn()``, so nothing — not
    even uncharged input installation — touches the shared system until
    the executor grants the first quantum.  The sort's telemetry is kept
    off (``telemetry=None``): spans from interleaved jobs would nest
    meaninglessly; the service layer emits its own spans instead.
    """

    def __init__(self, system: ParallelDiskSystem, spec: JobSpec) -> None:
        self.system = system
        self.spec = spec
        self.gate = RoundGate()
        self.done = False
        self.aborted = False
        self.error: BaseException | None = None
        self.result = None
        self.sorted_keys = None
        self._thread = threading.Thread(
            target=self._run, name=f"sort-job-{spec.job_id}", daemon=True
        )

    def start(self) -> None:
        """Launch the thread; returns once it is parked before round 1."""
        self._thread.start()
        self.gate._parked.wait()

    def step(self) -> bool:
        """Grant one scheduling quantum; True once the job has finished.

        The quantum spans from the previous park point up to (and
        including) the next charged stripe operation plus any compute
        that follows it — or to pipeline completion.
        """
        self.gate.grant()
        return self.done

    def cancel(self) -> None:
        """Cancel a parked, unfinished job and join its thread."""
        if self.done:
            return
        self.gate.cancel()
        self._thread.join()

    def join(self) -> None:
        self._thread.join()

    def _run(self) -> None:
        spec = self.spec
        try:
            self.gate.wait_turn()
            self.result = sort_records_on_system(
                self.system,
                spec.keys,
                spec.config,
                rng=spec.seed,
                validate=spec.validate,
                run_length=spec.run_length,
                formation=spec.formation,
                merger=spec.merger,
                telemetry=None,
            )
            # Uncharged read-back inside the final quantum, while the
            # degraded-mode remap state still matches this job's blocks.
            self.sorted_keys = self.result.peek_sorted(self.system)
        except JobAborted:
            self.aborted = True
        except BaseException as exc:  # surfaced by the executor
            self.error = exc
        finally:
            self.done = True
            self._parked_final()

    def _parked_final(self) -> None:
        # Wake the executor blocked in grant(); the thread is exiting,
        # so "parked" is permanently true from here on.
        self.gate._parked.set()
