"""Fairness policies: which runnable job gets the next I/O round.

The shared farm serializes parallel-I/O rounds on one clock, so the
*only* lever a policy has is the order of rounds — it can trade p50/p95
completion time between tenants but never changes aggregate throughput
(the executor is work-conserving) or any job's output.

Three disciplines:

* ``rr`` — round-robin over admission order: each runnable job gets one
  round per cycle.
* ``wfq`` — weighted-fair queueing over *tenants*: each tenant carries
  a virtual time advanced by ``1/weight`` per round; the tenant with
  the smallest virtual time goes next.  For two continuously backlogged
  tenants the normalized service gap stays within the classic bound
  ``|r_a/w_a - r_b/w_b| <= 1/w_a + 1/w_b``.
* ``srpt`` — shortest-remaining-I/O first: jobs ranked by a geometry
  estimate of the ParRead/flush rounds left, favoring small jobs to
  minimize mean completion time.
"""

from __future__ import annotations

import math

from ..errors import ConfigError
from .jobs import JobSpec, ServiceJob

POLICIES = ("rr", "wfq", "srpt")


class FairnessPolicy:
    """Interface the executor drives once per scheduling quantum."""

    name = "?"

    def on_admit(self, job: ServiceJob) -> None:
        """A job entered the runnable set."""

    def select(self, runnable: list[ServiceJob]) -> ServiceJob:
        """Pick the job whose next round runs (*runnable* is non-empty)."""
        raise NotImplementedError

    def on_round(self, job: ServiceJob) -> None:
        """One charged round of *job* just completed."""


class RoundRobinPolicy(FairnessPolicy):
    """Cycle through runnable jobs in admission order."""

    name = "rr"

    def __init__(self) -> None:
        self._last = -1

    def select(self, runnable: list[ServiceJob]) -> ServiceJob:
        ordered = sorted(runnable, key=lambda j: j.admission_index)
        for job in ordered:
            if job.admission_index > self._last:
                self._last = job.admission_index
                return job
        job = ordered[0]  # wrap the cycle
        self._last = job.admission_index
        return job


class WeightedFairPolicy(FairnessPolicy):
    """Tenant-level WFQ: smallest virtual time goes next.

    A tenant (re)entering the backlog starts at the current minimum
    active virtual time, so it cannot monopolize the farm "catching up"
    on rounds it never requested.  Within a tenant, jobs run in
    admission order.
    """

    name = "wfq"

    def __init__(self) -> None:
        self._vt: dict[str, float] = {}

    def select(self, runnable: list[ServiceJob]) -> ServiceJob:
        active = {j.tenant for j in runnable}
        known = [self._vt[t] for t in active if t in self._vt]
        floor = min(known) if known else 0.0
        for t in active:
            self._vt[t] = max(self._vt.get(t, floor), floor)
        tenant = min(active, key=lambda t: (self._vt[t], t))
        candidates = [j for j in runnable if j.tenant == tenant]
        return min(candidates, key=lambda j: j.admission_index)

    def on_round(self, job: ServiceJob) -> None:
        self._vt[job.tenant] = self._vt.get(job.tenant, 0.0) + 1.0 / job.weight

    def virtual_time(self, tenant: str) -> float:
        return self._vt.get(tenant, 0.0)


class ShortestRemainingIOPolicy(FairnessPolicy):
    """Rank jobs by estimated parallel-I/O rounds still to run."""

    name = "srpt"

    def select(self, runnable: list[ServiceJob]) -> ServiceJob:
        return min(
            runnable,
            key=lambda j: (
                max(estimate_total_rounds(j.spec) - j.rounds, 0),
                j.admission_index,
            ),
        )


def estimate_total_rounds(spec: JobSpec) -> int:
    """Geometry estimate of a job's total charged stripe operations.

    Every pass (run formation + each merge pass) reads and writes each
    block once; with perfect striping that is ``2 * ceil(blocks / D)``
    rounds per pass.  SRM's randomized reads add the occupancy overhead
    ``v`` on top, so this undershoots slightly — fine for ranking, which
    only needs relative order.
    """
    cfg = spec.config
    n_blocks = math.ceil(spec.n_records / cfg.block_size)
    rounds_per_pass = 2 * math.ceil(n_blocks / cfg.n_disks)
    length = spec.run_length if spec.run_length is not None else cfg.memory_records
    n_runs = math.ceil(spec.n_records / length)
    merge_passes = (
        0 if n_runs <= 1 else math.ceil(math.log(n_runs, cfg.merge_order))
    )
    return (1 + merge_passes) * rounds_per_pass


def make_policy(name: str) -> FairnessPolicy:
    """Instantiate a fairness policy by name (accepts common aliases)."""
    key = name.lower().replace("_", "-")
    if key in ("rr", "round-robin"):
        return RoundRobinPolicy()
    if key in ("wfq", "weighted-fair"):
        return WeightedFairPolicy()
    if key in ("srpt", "shortest-io", "shortest-remaining-io"):
        return ShortestRemainingIOPolicy()
    raise ConfigError(
        f"unknown fairness policy {name!r}; choose from {POLICIES}"
    )
