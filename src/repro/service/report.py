"""Service run results: per-job reports, fairness metrics, and checks.

:class:`ServiceResult` is what :meth:`SortService.run` returns.  Its
:meth:`~ServiceResult.verify_against_solo` re-runs every completed job
solo on a fresh system with the same seed and asserts the service's
core guarantee — bit-identical output, ScheduleStats, and IOStats —
and the work-conservation bound (busy time == sum of isolated
makespans).  ``repro serve --check`` and the acceptance tests both go
through it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from ..core.mergesort import SortResult, sort_records_on_system
from ..disks.system import ParallelDiskSystem
from ..disks.timing import DISK_1996, DiskTimingModel
from .jobs import ABORTED, COMPLETED, REJECTED, JobSpec, ServiceJob


def solo_reference(
    spec: JobSpec, timing: DiskTimingModel | None = None
) -> tuple[np.ndarray, SortResult, float]:
    """Run *spec* alone on a fresh farm — the isolation baseline.

    Returns (sorted keys, SortResult, isolated makespan in ms).  Same
    seed, same geometry, no neighbors: whatever this produces is what
    the service must reproduce bit-for-bit for the same spec.
    """
    system = ParallelDiskSystem(
        spec.config.n_disks,
        spec.config.block_size,
        timing=timing if timing is not None else DISK_1996,
    )
    result = sort_records_on_system(
        system,
        spec.keys,
        spec.config,
        rng=spec.seed,
        validate=spec.validate,
        run_length=spec.run_length,
        formation=spec.formation,
        merger=spec.merger,
    )
    return result.peek_sorted(system), result, system.elapsed_ms


def jain_index(shares: list[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one hog."""
    if not shares:
        return 1.0
    total = sum(shares)
    square_sum = sum(x * x for x in shares)
    if square_sum == 0.0:
        return 1.0
    return (total * total) / (len(shares) * square_sum)


@dataclass(frozen=True)
class JobReport:
    """Flat per-job summary row (JSONL-friendly)."""

    job_id: str
    tenant: str
    state: str
    n_records: int
    arrival_ms: float
    wait_ms: float | None
    busy_ms: float
    makespan_ms: float | None
    rounds: int
    quota_waits: int
    parallel_ios: int
    error: str | None = None

    @classmethod
    def from_job(cls, job: ServiceJob) -> "JobReport":
        return cls(
            job_id=job.job_id,
            tenant=job.tenant,
            state=job.state,
            n_records=job.spec.n_records,
            arrival_ms=job.spec.arrival_ms,
            wait_ms=job.wait_ms,
            busy_ms=job.busy_ms,
            makespan_ms=job.makespan_ms,
            rounds=job.rounds,
            quota_waits=job.quota_waits,
            parallel_ios=job.io.parallel_ios,
            error=job.error,
        )

    def row(self) -> dict:
        return {
            "kind": "job",
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "n_records": self.n_records,
            "arrival_ms": round(self.arrival_ms, 3),
            "wait_ms": None if self.wait_ms is None else round(self.wait_ms, 3),
            "busy_ms": round(self.busy_ms, 3),
            "makespan_ms": (
                None if self.makespan_ms is None else round(self.makespan_ms, 3)
            ),
            "rounds": self.rounds,
            "quota_waits": self.quota_waits,
            "parallel_ios": self.parallel_ios,
            "error": self.error,
        }


@dataclass
class ServiceResult:
    """Everything a finished service run knows about itself."""

    policy: str
    jobs: list[ServiceJob]
    makespan_ms: float
    idle_ms: float
    timing: DiskTimingModel | None = None
    #: Populated by :meth:`verify_against_solo`.
    identity_failures: list[str] = field(default_factory=list)
    isolated_total_ms: float | None = None

    @property
    def busy_ms(self) -> float:
        """Shared-clock time spent actually running rounds."""
        return self.makespan_ms - self.idle_ms

    @property
    def completed(self) -> list[ServiceJob]:
        return [j for j in self.jobs if j.state == COMPLETED]

    @property
    def aborted(self) -> list[ServiceJob]:
        return [j for j in self.jobs if j.state == ABORTED]

    @property
    def rejected(self) -> list[ServiceJob]:
        return [j for j in self.jobs if j.state == REJECTED]

    # -- fairness ------------------------------------------------------

    def tenant_rounds(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for job in self.jobs:
            out[job.tenant] = out.get(job.tenant, 0) + job.rounds
        return out

    def fairness_index(self) -> float:
        """Jain index over weight-normalized per-tenant round counts."""
        weights: dict[str, float] = {}
        for job in self.jobs:
            weights[job.tenant] = job.weight
        shares = [
            rounds / weights.get(t, 1.0)
            for t, rounds in sorted(self.tenant_rounds().items())
        ]
        return jain_index(shares)

    def completion_percentiles(self) -> dict[str, float]:
        spans = sorted(
            j.makespan_ms for j in self.completed if j.makespan_ms is not None
        )
        if not spans:
            return {"p50": 0.0, "p95": 0.0}
        return {
            "p50": float(np.percentile(spans, 50)),
            "p95": float(np.percentile(spans, 95)),
        }

    def throughput_vs_isolated(self) -> float | None:
        """sum(isolated makespans) / service busy time; ~1.0 when
        work-conserving.  Needs :meth:`verify_against_solo` first."""
        if self.isolated_total_ms is None or self.busy_ms <= 0:
            return None
        return self.isolated_total_ms / self.busy_ms

    # -- the core guarantee --------------------------------------------

    def verify_against_solo(self) -> list[str]:
        """Re-run each completed job solo; collect identity violations.

        Checks, per job: sorted output (bit-for-bit), the per-merge
        :class:`~repro.core.ScheduleStats` sequence, per-pass stats,
        runs formed, heap cycles, and every :class:`IOStats` counter
        including the per-disk arrays.  Also records the summed
        isolated makespans and checks work conservation:
        ``busy time <= sum(isolated)`` within float tolerance.
        """
        failures: list[str] = []
        total_iso = 0.0
        for job in self.completed:
            solo_keys, solo_result, solo_ms = solo_reference(
                job.spec, timing=self.timing
            )
            total_iso += solo_ms
            svc = job.driver.result
            jid = job.job_id
            if not np.array_equal(job.driver.sorted_keys, solo_keys):
                failures.append(f"{jid}: sorted output differs from solo run")
            if svc.merge_schedules != solo_result.merge_schedules:
                failures.append(f"{jid}: ScheduleStats differ from solo run")
            if svc.passes != solo_result.passes:
                failures.append(f"{jid}: per-pass stats differ from solo run")
            if svc.runs_formed != solo_result.runs_formed:
                failures.append(f"{jid}: runs_formed differs from solo run")
            if svc.heap_cycles != solo_result.heap_cycles:
                failures.append(f"{jid}: heap_cycles differ from solo run")
            if not job.io.same_counts(solo_result.io):
                failures.append(f"{jid}: IOStats differ from solo run")
        self.isolated_total_ms = total_iso
        if self.completed:
            # Rounds serialize on one clock; only float addition order
            # can differ between the shared and summed-solo totals.
            # Aborted jobs burned rounds with no solo counterpart, so
            # the conserved quantity is the *completed* jobs' busy time
            # (== self.busy_ms whenever nothing was aborted).
            busy = sum(j.busy_ms for j in self.completed)
            if busy > total_iso * (1.0 + 1e-9) + 1e-6:
                failures.append(
                    f"completed busy time {busy:.3f} ms exceeds summed "
                    f"isolated makespans {total_iso:.3f} ms"
                )
            if not math.isclose(busy, total_iso, rel_tol=1e-6):
                failures.append(
                    f"completed busy time {busy:.3f} ms != summed isolated "
                    f"makespans {total_iso:.3f} ms (not work-conserving?)"
                )
        self.identity_failures = failures
        return failures

    # -- reporting -----------------------------------------------------

    def summary_row(self) -> dict:
        pct = self.completion_percentiles()
        return {
            "kind": "service_summary",
            "policy": self.policy,
            "n_jobs": len(self.jobs),
            "n_completed": len(self.completed),
            "n_aborted": len(self.aborted),
            "n_rejected": len(self.rejected),
            "n_tenants": len(self.tenant_rounds()),
            "makespan_ms": round(self.makespan_ms, 3),
            "idle_ms": round(self.idle_ms, 3),
            "busy_ms": round(self.busy_ms, 3),
            "isolated_total_ms": (
                None
                if self.isolated_total_ms is None
                else round(self.isolated_total_ms, 3)
            ),
            "throughput_vs_isolated": (
                None
                if self.throughput_vs_isolated() is None
                else round(self.throughput_vs_isolated(), 6)
            ),
            "fairness_index": round(self.fairness_index(), 6),
            "p50_makespan_ms": round(pct["p50"], 3),
            "p95_makespan_ms": round(pct["p95"], 3),
            "tenant_rounds": self.tenant_rounds(),
            "identity_failures": list(self.identity_failures),
        }

    def rows(self) -> list[dict]:
        rows = [self.summary_row()]
        rows.extend(JobReport.from_job(j).row() for j in self.jobs)
        return rows

    def write_jsonl(self, path) -> None:
        with open(path, "a", encoding="utf-8") as fh:
            for row in self.rows():
                fh.write(json.dumps(row) + "\n")

    def render(self) -> str:
        s = self.summary_row()
        lines = [
            f"service run — policy={self.policy} jobs={s['n_jobs']} "
            f"tenants={s['n_tenants']}",
            f"  makespan {s['makespan_ms']:.1f} ms "
            f"(busy {s['busy_ms']:.1f}, idle {s['idle_ms']:.1f}); "
            f"fairness index {s['fairness_index']:.4f}",
        ]
        if s["throughput_vs_isolated"] is not None:
            lines.append(
                f"  vs isolated: sum {s['isolated_total_ms']:.1f} ms, "
                f"throughput ratio {s['throughput_vs_isolated']:.4f}"
            )
        header = (
            f"  {'job':<12} {'tenant':<10} {'state':<10} {'recs':>7} "
            f"{'wait ms':>9} {'span ms':>9} {'rounds':>7} {'parIOs':>7}"
        )
        lines.append(header)
        for job in self.jobs:
            r = JobReport.from_job(job)
            wait = "-" if r.wait_ms is None else f"{r.wait_ms:.1f}"
            span = "-" if r.makespan_ms is None else f"{r.makespan_ms:.1f}"
            lines.append(
                f"  {r.job_id:<12} {r.tenant:<10} {r.state:<10} "
                f"{r.n_records:>7} {wait:>9} {span:>9} "
                f"{r.rounds:>7} {r.parallel_ios:>7}"
            )
        if self.identity_failures:
            lines.append("  IDENTITY FAILURES:")
            lines.extend(f"    {f}" for f in self.identity_failures)
        return "\n".join(lines)
