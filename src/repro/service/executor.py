"""The multi-tenant sort service executor.

One shared :class:`~repro.disks.ParallelDiskSystem` (one clock, one set
of counters), many gated job drivers.  The run loop, per quantum:

1. admit every due arrival through the 5-phase pipeline (phases 1–3),
2. ask the fairness policy which admitted job goes next (phase 4),
3. grant that job exactly one charged parallel-I/O round (phase 5),
4. charge the job the exact counter/clock delta of its round.

Because rounds serialize on the shared clock and the executor is
work-conserving (it idles only when *no* job is runnable), the
service's busy time equals the sum of the jobs' isolated makespans;
policies redistribute *waiting*, never work.  Per-job accounting is
exact for the same reason: each delta belongs to exactly one job.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.config import SRMConfig
from ..disks.system import ParallelDiskSystem
from ..disks.timing import DISK_1996, DiskTimingModel
from ..errors import ConfigError, ScheduleError
from ..memory.pool import BufferPool, ServicePool
from ..telemetry import TELEMETRY_OFF
from ..telemetry.schema import (
    EV_JOB_ABORTED,
    H_SERVICE_JOB_ROUNDS,
    SERVICE_IDLE_MS,
    SERVICE_JOBS_ABORTED,
    SERVICE_JOBS_COMPLETED,
    SERVICE_JOBS_SUBMITTED,
    SERVICE_ROUNDS_DISPATCHED,
    SPAN_SERVICE,
    SPAN_SERVICE_JOB,
)
from .admission import ADMIT, REJECT, WAIT, AdmissionPipeline
from .driver import JobDriver
from .jobs import (
    ABORTED,
    COMPLETED,
    QUEUED,
    REJECTED,
    RUNNING,
    WAITING,
    JobSpec,
    ServiceJob,
    TenantSpec,
)
from .policy import FairnessPolicy, make_policy
from .report import ServiceResult

#: Rounds-per-job histogram edges (jobs span run formation to multi-pass).
_JOB_ROUND_EDGES = (8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)


@dataclass(frozen=True)
class ServiceConfig:
    """Static configuration of a :class:`SortService` instance.

    ``base_config`` fixes the farm geometry (``D``, ``B``) and the
    default per-tenant quota: tenants without an explicit
    ``quota_frames`` get enough frames for ``default_jobs`` concurrent
    jobs of this geometry.  Individual jobs may use a different merge
    order but must match ``D`` and ``B``.
    """

    base_config: SRMConfig
    tenants: tuple[TenantSpec, ...] = ()
    policy: str = "rr"
    max_slots: int = 8
    timing: DiskTimingModel | None = None

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigError("service needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {names}")

    def quota_for(self, tenant: TenantSpec) -> int:
        if tenant.quota_frames is not None:
            return tenant.quota_frames
        frames = BufferPool(
            self.base_config.merge_order, self.base_config.n_disks
        ).total_frames
        return tenant.default_jobs * frames


class SortService:
    """Admission + fair dispatch of sort jobs over one shared farm."""

    def __init__(self, config: ServiceConfig, telemetry=None) -> None:
        self.config = config
        self.tel = telemetry if telemetry is not None else TELEMETRY_OFF
        base = config.base_config
        self.system = ParallelDiskSystem(
            base.n_disks,
            base.block_size,
            timing=config.timing if config.timing is not None else DISK_1996,
        )
        self.tracer = None
        collector = getattr(self.tel, "trace", None)
        if collector is not None:
            from ..telemetry.trace import SystemTracer

            self.tracer = SystemTracer(collector, collector.new_domain("service"))
            self.system.tracer = self.tracer
        self.pool = ServicePool()
        for tenant in config.tenants:
            self.pool.create_partition(
                tenant.name, config.quota_for(tenant), tenant.weight
            )
        self.admission = AdmissionPipeline(
            self.pool,
            base.n_disks,
            base.block_size,
            config.max_slots,
            telemetry=self.tel,
        )
        self.policy: FairnessPolicy = make_policy(config.policy)
        self.jobs: list[ServiceJob] = []
        self._by_id: dict[str, ServiceJob] = {}
        #: Simulated time spent with no runnable job (clock jumps to the
        #: next arrival); subtracting it from the makespan leaves pure
        #: busy time, which must equal the sum of isolated makespans.
        self.idle_ms = 0.0
        # Waiting jobs can only become admissible when frames or a slot
        # come back; gate their retries on that so quota_waits counts
        # real admission attempts, not poll spins.
        self._resources_freed = True

    # -- submission ----------------------------------------------------

    def submit(self, spec: JobSpec) -> ServiceJob:
        """Queue a job request (admission happens at its arrival time)."""
        if spec.job_id in self._by_id:
            raise ConfigError(f"duplicate job id {spec.job_id!r}")
        job = ServiceJob(spec=spec)
        self.jobs.append(job)
        self._by_id[spec.job_id] = job
        self.tel.counter(SERVICE_JOBS_SUBMITTED).inc()
        return job

    def submit_arrivals(self, arrivals, config: SRMConfig | None = None) -> None:
        """Materialize and queue an arrival script (see workloads.arrivals)."""
        cfg = config if config is not None else self.config.base_config
        for arrival in arrivals:
            self.submit(JobSpec.from_arrival(arrival, cfg))

    def job(self, job_id: str) -> ServiceJob:
        job = self._by_id.get(job_id)
        if job is None:
            raise ConfigError(f"unknown job {job_id!r}")
        return job

    # -- the run loop --------------------------------------------------

    def run(self, abort_after: dict[str, int] | None = None) -> ServiceResult:
        """Drive every queued job to completion; returns the result bundle.

        *abort_after* maps job ids to a round count after which the
        service cancels them (deterministic abort injection for testing
        quota reclamation); aborted jobs release their frames and slot
        but produce no output.
        """
        abort_after = abort_after or {}
        span = self.tel.span(
            SPAN_SERVICE,
            policy=self.policy.name,
            n_jobs=len(self.jobs),
            n_tenants=len(self.pool.tenants),
        )
        pending = deque(
            sorted(self.jobs, key=lambda j: (j.spec.arrival_ms, j.job_id))
        )
        waiting: deque[ServiceJob] = deque()
        active: list[ServiceJob] = []

        while pending or waiting or active:
            now = self.system.elapsed_ms
            self._admit_due(now, pending, waiting, active)
            runnable = [j for j in active if not j.done]
            if not runnable:
                if pending:
                    # Work-conserving: jump straight to the next arrival.
                    self._idle_until(pending[0].spec.arrival_ms)
                    continue
                if waiting:
                    raise ScheduleError(
                        "admission deadlock: "
                        f"{[j.job_id for j in waiting]} wait on frames/slots "
                        "but no running job will ever release any"
                    )
                break  # everything done

            job = self.policy.select(runnable)  # phase 4
            self._grant_round(job)  # phase 5
            if job.done:
                self._finish(job, active)
            elif job.rounds >= abort_after.get(job.job_id, float("inf")):
                self._abort(job, active, reason="abort_after threshold")

        makespan = self.system.elapsed_ms
        if self.tracer is not None:
            self.tracer.finish(makespan)
        span.set(
            makespan_ms=makespan,
            idle_ms=self.idle_ms,
            rounds=sum(j.rounds for j in self.jobs),
        )
        span.close()
        return ServiceResult(
            policy=self.policy.name,
            jobs=list(self.jobs),
            makespan_ms=makespan,
            idle_ms=self.idle_ms,
            timing=self.system.timing,
        )

    # -- internals -----------------------------------------------------

    def _admit_due(self, now, pending, waiting, active) -> None:
        # Waiting jobs retry first — they arrived before anything still
        # in pending — then newly due arrivals, in arrival order.
        if waiting and self._resources_freed:
            for _ in range(len(waiting)):
                job = waiting.popleft()
                if not self._admit_one(job, active):
                    waiting.append(job)
        self._resources_freed = False
        while pending and pending[0].spec.arrival_ms <= now:
            job = pending.popleft()
            if not self._admit_one(job, active):
                if job.state == WAITING:
                    waiting.append(job)

    def _admit_one(self, job: ServiceJob, active: list[ServiceJob]) -> bool:
        """Phases 1–3 for one job; True if it became runnable (or rejected
        terminally — i.e. no longer needs queueing)."""
        outcome = self.admission.try_admit(job)
        if outcome == WAIT:
            job.state = WAITING
            return False
        if outcome == REJECT:
            job.state = REJECTED
            return True
        assert outcome == ADMIT
        job.state = RUNNING
        job.admitted_ms = self.system.elapsed_ms
        driver = JobDriver(self.system, job.spec)
        job.driver = driver
        driver.start()
        self.policy.on_admit(job)
        active.append(job)
        return True

    def _grant_round(self, job: ServiceJob) -> None:
        system = self.system
        if self.tracer is not None:
            self.tracer.context = {"job": job.job_id, "tenant": job.tenant}
        # Only the granted thread runs, so pointing the shared hook and
        # counter sink at this job is race-free.
        system.round_hook = job.driver.gate.wait_turn
        system.stats_sink = job.io
        before = job.io.snapshot()
        t0 = system.elapsed_ms
        if job.first_round_ms is None:
            job.first_round_ms = t0
        try:
            job.driver.step()
        finally:
            system.round_hook = None
            system.stats_sink = None
            if self.tracer is not None:
                self.tracer.context = None
        delta = job.io.since(before)
        job.busy_ms += system.elapsed_ms - t0
        if delta.parallel_ios > 0:
            # The setup quantum (input install, no charged op) is free;
            # every other quantum is one parallel-I/O round.
            job.rounds += 1
            self.policy.on_round(job)
            self.tel.counter(SERVICE_ROUNDS_DISPATCHED).inc()
        if job.driver.error is not None:
            raise job.driver.error

    def _finish(self, job: ServiceJob, active: list[ServiceJob]) -> None:
        job.driver.join()
        self.admission.release(job)
        self._resources_freed = True
        active.remove(job)
        job.state = COMPLETED
        job.completed_ms = self.system.elapsed_ms
        # srm_mergesort charged the job the *shared* counter delta of
        # its whole lifetime — including neighbors' rounds.  Replace it
        # with the exact per-round accumulation.
        job.driver.result.io = job.io.snapshot()
        self.tel.counter(SERVICE_JOBS_COMPLETED).inc()
        self.tel.histogram(H_SERVICE_JOB_ROUNDS, _JOB_ROUND_EDGES).observe(
            job.rounds
        )
        jspan = self.tel.span(
            SPAN_SERVICE_JOB,
            job=job.job_id,
            tenant=job.tenant,
            rounds=job.rounds,
            wait_ms=job.wait_ms,
            busy_ms=job.busy_ms,
            makespan_ms=job.makespan_ms,
            parallel_ios=job.io.parallel_ios,
        )
        jspan.close()

    def _abort(self, job: ServiceJob, active: list[ServiceJob], reason: str) -> None:
        job.driver.cancel()
        self.admission.release(job)
        self._resources_freed = True
        active.remove(job)
        job.state = ABORTED
        job.completed_ms = self.system.elapsed_ms
        job.error = reason
        # The job's disk blocks are orphaned (no charged reclamation
        # pass exists); frames and slots — the scarce resources — are
        # back, which is what the accounting tests pin down.
        self.tel.counter(SERVICE_JOBS_ABORTED).inc()
        self.tel.event(
            EV_JOB_ABORTED,
            job=job.job_id,
            tenant=job.tenant,
            rounds=job.rounds,
            reason=reason,
        )

    def _idle_until(self, target_ms: float) -> None:
        t0 = self.system.elapsed_ms
        if target_ms <= t0:
            return
        self.system.elapsed_ms = target_ms
        self.idle_ms += target_ms - t0
        self.tel.counter(SERVICE_IDLE_MS).inc(int(target_ms - t0))
        if self.tracer is not None:
            self.tracer.idle(t0, target_ms)


def run_arrival_script(
    arrivals,
    base_config: SRMConfig,
    policy: str = "rr",
    tenant_weights: dict[str, float] | None = None,
    default_jobs: int = 2,
    max_slots: int = 8,
    timing: DiskTimingModel | None = None,
    telemetry=None,
    abort_after: dict[str, int] | None = None,
) -> ServiceResult:
    """Serve one arrival script end to end and return the result.

    Tenants are discovered from the script; each gets a quota sized for
    *default_jobs* concurrent jobs of the base geometry and the weight
    from *tenant_weights* (default 1.0).  This is the shared entry point
    of ``repro serve``, the chaos service scenario, and the bench
    contention section, so they all agree on what a service run is.
    """
    tenants = sorted({a.tenant for a in arrivals})
    if not tenants:
        raise ConfigError("arrival script names no tenants")
    weights = tenant_weights or {}
    specs = tuple(
        TenantSpec(t, weight=weights.get(t, 1.0), default_jobs=default_jobs)
        for t in tenants
    )
    service = SortService(
        ServiceConfig(
            base_config=base_config,
            tenants=specs,
            policy=policy,
            max_slots=max_slots,
            timing=timing,
        ),
        telemetry=telemetry,
    )
    service.submit_arrivals(arrivals)
    return service.run(abort_after=abort_after)
