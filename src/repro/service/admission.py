"""The service's 5-phase admission pipeline.

Modeled on the split-phase scheduler idiom (validate / allocate /
enqueue / select / dispatch, cf. coreblocks' scheduler decomposition in
SNIPPETS.md): each phase either advances a job or parks it with a
precise reason, and a phase that fails after a predecessor acquired a
resource rolls that resource back so admission stays atomic.

Phases::

    1. validate  — geometry matches the farm; the job's frame demand
                   fits its tenant's quota *at all* (else: rejected,
                   quota_violation event).
    2. reserve   — carve the frames out of the tenant partition
                   (else: wait).
    3. slot      — acquire one of the bounded queue slots (else: roll
                   back the reservation, wait).
    4. select    — per quantum, the fairness policy picks among
                   admitted jobs (executor-side, :mod:`.policy`).
    5. dispatch  — the executor grants the chosen job one round
                   (executor-side, :mod:`.executor`).

Phases 1–3 live here; this class owns the tenant pool and the slot
budget and is the only code path that reserves or releases either.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..memory.pool import ServicePool
from ..telemetry import TELEMETRY_OFF
from ..telemetry.schema import (
    EV_QUOTA_VIOLATION,
    SERVICE_JOBS_ADMITTED,
    SERVICE_JOBS_REJECTED,
    SERVICE_QUOTA_WAITS,
)
from .jobs import ServiceJob

PHASES = ("validate", "reserve", "slot", "select", "dispatch")

#: Admission outcomes for phases 1–3.
ADMIT = "admit"
WAIT = "wait"
REJECT = "reject"


class AdmissionPipeline:
    """Phases 1–3: validate, reserve tenant frames, acquire a slot."""

    def __init__(
        self,
        pool: ServicePool,
        n_disks: int,
        block_size: int,
        max_slots: int,
        telemetry=None,
    ) -> None:
        if max_slots < 1:
            raise ConfigError(f"need at least one queue slot, got {max_slots}")
        self.pool = pool
        self.n_disks = n_disks
        self.block_size = block_size
        self.max_slots = max_slots
        self._free_slots = list(range(max_slots - 1, -1, -1))
        self.tel = telemetry if telemetry is not None else TELEMETRY_OFF
        self._admitted = 0

    @property
    def slots_in_use(self) -> int:
        return self.max_slots - len(self._free_slots)

    def try_admit(self, job: ServiceJob) -> str:
        """Run phases 1–3 for *job*; returns ADMIT, WAIT, or REJECT.

        On ADMIT the job holds its frames and a slot and carries its
        ``admission_index``.  On WAIT nothing is held (a reservation
        made in phase 2 is rolled back if phase 3 finds no slot).  On
        REJECT the job can never run and ``job.error`` says why.
        """
        spec = job.spec

        # Phase 1: validate geometry and quota feasibility.
        if (
            spec.config.n_disks != self.n_disks
            or spec.config.block_size != self.block_size
        ):
            return self._reject(
                job,
                f"geometry mismatch: job wants D={spec.config.n_disks} "
                f"B={spec.config.block_size}, farm has D={self.n_disks} "
                f"B={self.block_size}",
            )
        try:
            part = self.pool.partition(spec.tenant)
        except ConfigError as exc:
            return self._reject(job, str(exc))
        frames = spec.frames_needed
        if not part.fits(frames):
            self.tel.event(
                EV_QUOTA_VIOLATION,
                job=spec.job_id,
                tenant=spec.tenant,
                frames_needed=frames,
                quota_frames=part.capacity_frames,
            )
            return self._reject(
                job,
                f"quota violation: job needs {frames} frames, tenant "
                f"{spec.tenant!r} quota is {part.capacity_frames}",
            )

        # Phase 2: reserve the frames from the tenant's carve-out.
        if not part.try_reserve(frames):
            job.quota_waits += 1
            self.tel.counter(SERVICE_QUOTA_WAITS).inc()
            return WAIT

        # Phase 3: acquire a queue slot; roll the reservation back if
        # none is free so a parked job holds nothing.
        if not self._free_slots:
            part.release(frames)
            job.quota_waits += 1
            self.tel.counter(SERVICE_QUOTA_WAITS).inc()
            return WAIT

        job.reserved_frames = frames
        job.slot = self._free_slots.pop()
        job.weight = part.weight
        job.admission_index = self._admitted
        self._admitted += 1
        self.tel.counter(SERVICE_JOBS_ADMITTED).inc()
        return ADMIT

    def release(self, job: ServiceJob) -> None:
        """Return a finished/aborted job's frames and slot (exactly once)."""
        if job.reserved_frames:
            self.pool.partition(job.tenant).release(job.reserved_frames)
            job.reserved_frames = 0
        if job.slot is not None:
            self._free_slots.append(job.slot)
            job.slot = None

    def _reject(self, job: ServiceJob, reason: str) -> str:
        job.error = reason
        self.tel.counter(SERVICE_JOBS_REJECTED).inc()
        return REJECT
