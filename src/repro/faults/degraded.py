"""Degraded-mode operation: surviving a permanent disk loss mid-merge.

SRM is unusually well positioned for disk death because §5's flushing
already proves any buffered block can be forgotten and re-read — block
contents are never only-in-memory state the merge depends on.  What
death removes is a *location*: the cyclic layout rule says block ``i``
of a run lives on disk ``(start + i) mod D``, and that disk no longer
answers.

The recovery model is replica rebuild, as production arrays do it:

* the dead disk's live blocks are re-materialized (from the replica /
  parity the simulation does not model, so the *reads* are uncharged)
  and written round-robin onto the surviving ``D - 1`` disks — those
  **writes are charged** as real parallel I/O, the visible cost spike of
  a rebuild;
* a remap table redirects every migrated address, so run extent maps,
  the scheduler, and the forecasting structure keep speaking *logical*
  disks — the FDS matrix, the layout rule, and Theorem 1's accounting
  stay untouched;
* later operations whose stripes now touch one survivor twice are split
  into extra rounds, counted as ``faults.degraded_split_ios`` — the
  steady-state degraded overhead.

The merge therefore continues bit-identically: which records come out
in which order was never a function of where blocks physically live.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DiskDeadError

__all__ = ["DeathReport", "migrate_dead_disk"]


@dataclass(frozen=True, slots=True)
class DeathReport:
    """Outcome of one disk-loss recovery."""

    disk: int
    trigger: str
    recovered_blocks: int
    recovery_write_rounds: int
    survivors: tuple[int, ...]


def migrate_dead_disk(system, disk: int, trigger: str) -> DeathReport:
    """Move *disk*'s live blocks onto the survivors and install remaps.

    Called by :meth:`ParallelDiskSystem._kill_disk` with *disk* already
    in ``system.dead_disks``.  Blocks are taken in slot order and placed
    round-robin, so recovery is deterministic; each group of
    ``len(survivors)`` recovery writes is charged as one parallel
    operation.
    """
    from ..disks.system import BlockAddress

    survivors = [
        d
        for d in range(system.n_disks)
        if d != disk and d not in system.dead_disks
    ]
    if not survivors:
        raise DiskDeadError(
            f"disk {disk} died and no surviving disk remains (D={system.n_disks})"
        )
    dead = system.disks[disk]
    slots = sorted(dead._slots)
    rounds = 0
    group: list[int] = []
    for i, slot in enumerate(slots):
        target = survivors[i % len(survivors)]
        new_slot = system.disks[target].allocate()
        system.disks[target].write(new_slot, dead._slots[slot])
        system._remap[BlockAddress(disk, slot)] = BlockAddress(target, new_slot)
        group.append(target)
        if len(group) == len(survivors):
            _charge_recovery_write(system, group)
            rounds += 1
            group = []
    if group:
        _charge_recovery_write(system, group)
        rounds += 1
    # The spindle is gone; dropping its slot map makes any unresolved
    # access fail loudly instead of reading a ghost.
    dead._slots.clear()
    return DeathReport(
        disk=disk,
        trigger=trigger,
        recovered_blocks=len(slots),
        recovery_write_rounds=rounds,
        survivors=tuple(survivors),
    )


def _charge_recovery_write(system, disks: list[int]) -> None:
    """Account one parallel recovery-write round on *disks*."""
    system.stats.record_write(disks)
    system._advance_clock(len(disks))
    if system.trace is not None:
        system.trace.record("write", disks, system.elapsed_ms)
