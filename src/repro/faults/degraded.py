"""Degraded-mode operation: surviving a permanent disk loss mid-merge.

SRM is unusually well positioned for disk death because §5's flushing
already proves any buffered block can be forgotten and re-read — block
contents are never only-in-memory state the merge depends on.  What
death removes is a *location*: the cyclic layout rule says block ``i``
of a run lives on disk ``(start + i) mod D``, and that disk no longer
answers.

Two recovery models, selected by the plan's ``redundancy``:

* ``"none"`` — replica rebuild: the dead disk's live blocks are
  re-materialized from the replica the simulation does not model (so
  the *reads* are uncharged) and written round-robin onto the surviving
  ``D - 1`` disks; the **writes are charged** as real parallel I/O.
* ``"parity"`` — honest RAID-5 arithmetic: every lost block is rebuilt
  by XOR over its parity-group siblings, and **both** the sibling
  *reads* (``faults.recovery_read_ios``) and the rebuild *writes* are
  charged.  A group that lost two members (a second death mid-rebuild,
  co-located members from an earlier migration) is unrecoverable and
  raises, exactly as on a real array.

Either way a remap table redirects every migrated address, so run
extent maps, the scheduler, and the forecasting structure keep speaking
*logical* disks — the FDS matrix, the layout rule, and Theorem 1's
accounting stay untouched; later stripes that now touch one survivor
twice split into extra rounds (``faults.degraded_split_ios``).  The
merge therefore continues bit-identically: which records come out in
which order was never a function of where blocks physically live.

Recovery writes count as operations on their target spindles, so a
planned death can fire *on a recovery target* — death during rebuild —
and the nested loss is handled by the same machinery.

:func:`scrub_addresses` / :func:`scrub_and_repair` close the loop on
torn writes: a charged verification pass over stored blocks that
repairs stale seals from parity before anyone consumes the bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DataError, DiskDeadError

__all__ = [
    "DeathReport",
    "ScrubReport",
    "migrate_dead_disk",
    "scrub_addresses",
    "scrub_and_repair",
]


@dataclass(frozen=True, slots=True)
class DeathReport:
    """Outcome of one disk-loss recovery."""

    disk: int
    trigger: str
    recovered_blocks: int
    recovery_write_rounds: int
    survivors: tuple[int, ...]
    #: ``"replica"`` or ``"parity"`` — which rebuild path ran.
    mode: str = "replica"
    #: Charged reconstruction-read rounds (parity mode only).
    recovery_read_rounds: int = 0


@dataclass(frozen=True, slots=True)
class ScrubReport:
    """Outcome of a checksum-scrub pass over stored blocks."""

    scanned: int
    repaired: int
    scan_read_rounds: int


def migrate_dead_disk(system, disk: int, trigger: str) -> DeathReport:
    """Re-home *disk*'s blocks onto the survivors and install remaps.

    Called by :meth:`ParallelDiskSystem._kill_disk` with *disk* already
    in ``system.dead_disks``.  Blocks are taken in slot order and placed
    round-robin, so recovery is deterministic; each group of
    ``len(survivors)`` recovery writes is charged as one parallel
    operation.  With parity armed the block *contents* come from
    charged XOR reconstruction instead of the corpse.
    """
    survivors = [
        d
        for d in range(system.n_disks)
        if d != disk and d not in system.dead_disks
    ]
    if not survivors:
        raise DiskDeadError(
            f"disk {disk} died and no surviving disk remains (D={system.n_disks})"
        )
    if system._parity is not None:
        return _migrate_parity(system, disk, trigger, survivors)
    return _migrate_replica(system, disk, trigger, survivors)


def _migrate_replica(system, disk, trigger, survivors) -> DeathReport:
    from ..disks.system import BlockAddress

    dead = system.disks[disk]
    slots = sorted(dead._slots)
    rounds = 0
    rr = 0
    group: list[int] = []
    for slot in slots:
        target, rr = _next_alive(system, survivors, rr)
        new_slot = system.disks[target].allocate()
        system.disks[target].write(new_slot, dead._slots[slot])
        system._remap[BlockAddress(disk, slot)] = BlockAddress(target, new_slot)
        group.append(target)
        if len(group) == len(survivors):
            _charge_recovery_write(system, group)
            rounds += 1
            group = []
        _after_recovery_write(system, target)
    if group:
        _charge_recovery_write(system, group)
        rounds += 1
    # The spindle is gone; dropping its slot map makes any unresolved
    # access fail loudly instead of reading a ghost.
    dead._slots.clear()
    return DeathReport(
        disk=disk,
        trigger=trigger,
        recovered_blocks=len(slots),
        recovery_write_rounds=rounds,
        survivors=tuple(survivors),
        mode="replica",
    )


def _migrate_parity(system, disk, trigger, survivors) -> DeathReport:
    """Rebuild every lost block from parity — reads and writes charged."""
    from ..disks.system import BlockAddress

    parity = system._parity
    dead = system.disks[disk]
    slots = sorted(dead._slots)
    reads_before = system.faults.stats.recovery_read_ios

    # The ledger speaks allocation-time addresses; map the dying disk's
    # physical slots back to their entries (remaps for *this* death are
    # not installed yet, so resolve() still lands here).
    by_slot: dict[int, tuple] = {}
    for alloc, (g, member) in parity._by_addr.items():
        p = system.resolve(alloc)
        if p.disk == disk:
            by_slot[p.slot] = ("member", g, member)
    for alloc, g in parity._parity_addrs.items():
        p = system.resolve(alloc)
        if p.disk == disk:
            by_slot[p.slot] = ("parity", g, None)

    rounds = 0
    rr = 0
    group: list[int] = []
    for slot in slots:
        entry = by_slot.get(slot)
        if entry is None:
            raise DataError(
                f"block at ({disk}, {slot}) is not parity-tracked; "
                "cannot rebuild a lost block the ledger never saw"
            )
        kind, g, member = entry
        if kind == "member":
            blk = parity.reconstruct_member(g, member)
        else:
            blk = parity.rebuild_parity_block(g)
        target, rr = _next_alive(system, survivors, rr)
        new_slot = system.disks[target].allocate()
        system.disks[target].write(new_slot, blk)
        system._remap[BlockAddress(disk, slot)] = BlockAddress(target, new_slot)
        system.faults.add_recovery_ops(target)
        group.append(target)
        if len(group) == len(survivors):
            _charge_recovery_write(system, group)
            rounds += 1
            group = []
        _after_recovery_write(system, target)
    if group:
        _charge_recovery_write(system, group)
        rounds += 1
    dead._slots.clear()
    return DeathReport(
        disk=disk,
        trigger=trigger,
        recovered_blocks=len(slots),
        recovery_write_rounds=rounds,
        survivors=tuple(survivors),
        mode="parity",
        recovery_read_rounds=system.faults.stats.recovery_read_ios - reads_before,
    )


def _next_alive(system, survivors, rr: int) -> tuple[int, int]:
    """Round-robin over *survivors*, skipping any that died mid-rebuild."""
    for _ in range(len(survivors)):
        d = survivors[rr % len(survivors)]
        rr += 1
        if d not in system.dead_disks:
            return d, rr
    raise DiskDeadError("every recovery target died during the rebuild")


def _after_recovery_write(system, target: int) -> None:
    """Recovery writes are real operations: they age the target spindle.

    That makes death-during-rebuild expressible — a planned death whose
    threshold is crossed by rebuild traffic fires here, nesting a second
    recovery inside the first.
    """
    inj = system.faults
    inj.note_op(target)
    if inj.death_due(target):
        system._kill_disk(target, "planned")


def _charge_recovery_write(system, disks: list[int]) -> None:
    """Account one parallel recovery-write round on *disks*."""
    system.stats.record_write(disks)
    system._advance_clock(len(disks))
    if system.trace is not None:
        system.trace.record("write", disks, system.elapsed_ms)


# -- checksum scrubbing ----------------------------------------------------


def scrub_addresses(system, addresses) -> ScrubReport:
    """Verify the stored seals of *addresses*; repair tears from parity.

    The scan reads are charged as greedy parallel rounds (distinct
    disks per round); each stale seal found is rebuilt in place via
    :meth:`~repro.faults.parity.ParityStore.repair_in_place`, whose
    reconstruction I/O is charged on top.  With ``redundancy="none"``
    a detected tear is unrepairable and raises :class:`DataError`.
    """
    repaired = 0
    scan_disks: list[int] = []
    for addr in addresses:
        p = system.resolve(addr)
        if p.disk in system.dead_disks:
            raise DiskDeadError(
                f"scrub target {tuple(addr)} resolves to dead disk {p.disk}"
            )
        blk = system.disks[p.disk].read(p.slot)
        scan_disks.append(p.disk)
        if not blk.verify():
            system._repair_torn(addr, p.disk)
            repaired += 1
    rounds = _charge_scan_reads(system, scan_disks)
    return ScrubReport(
        scanned=len(scan_disks), repaired=repaired, scan_read_rounds=rounds
    )


def scrub_and_repair(system) -> ScrubReport:
    """Full-device scrub: verify every stored block on every live disk.

    The background-patrol read of production arrays, compressed into
    one charged pass.  Repairable tears (parity-tracked members) are
    rebuilt in place; a tear outside the ledger raises.
    """
    from ..disks.system import BlockAddress

    repaired = 0
    scan_disks: list[int] = []
    bad: list[BlockAddress] = []
    for d, disk in enumerate(system.disks):
        if d in system.dead_disks:
            continue
        for slot in sorted(disk._slots):
            scan_disks.append(d)
            if not disk._slots[slot].verify():
                bad.append(BlockAddress(d, slot))
    for phys in bad:
        alloc = _alloc_addr_of(system, phys)
        system._repair_torn(alloc, phys.disk)
        repaired += 1
    rounds = _charge_scan_reads(system, scan_disks)
    return ScrubReport(
        scanned=len(scan_disks), repaired=repaired, scan_read_rounds=rounds
    )


def _alloc_addr_of(system, phys):
    """Invert the remap chains: the ledger address resolving to *phys*."""
    parity = system._parity
    if parity is not None:
        for alloc in parity._by_addr:
            if system.resolve(alloc) == phys:
                return alloc
    return phys


def _charge_scan_reads(system, scan_disks: list[int]) -> int:
    """Charge scrub scan reads as parallel rounds of distinct disks.

    Deliberately not :meth:`_account_rounds`: a scrub touching one disk
    many times is patrol traffic, not degraded-stripe splitting, so it
    must not pollute ``faults.degraded_split_ios``.
    """
    rounds = 0
    used: set[int] = set()
    group: list[int] = []
    for d in scan_disks:
        if d in used:
            _charge_one_scan_round(system, group)
            rounds += 1
            used, group = set(), []
        used.add(d)
        group.append(d)
    if group:
        _charge_one_scan_round(system, group)
        rounds += 1
    return rounds


def _charge_one_scan_round(system, disks: list[int]) -> None:
    system.stats.record_read(disks)
    system._advance_clock(len(disks))
    if system.trace is not None:
        system.trace.record("read", disks, system.elapsed_ms)
