"""Retry policy and per-disk circuit breaking.

A transient read failure (or a detected corrupt transfer) is retried
with capped exponential backoff; jitter is drawn from the injector's
per-disk RNG stream so a seeded fault plan replays bit-identically.
Failures that keep repeating on one spindle trip its circuit breaker,
which escalates the fault from "retry this block" to "this disk is
dead" — at which point degraded mode (:mod:`repro.faults.degraded`)
takes over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError

__all__ = ["RetryPolicy", "CircuitBreaker", "DEFAULT_RETRY"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attributes
    ----------
    max_attempts:
        Read attempts per block before the failure escalates to a
        disk-level event (the disk is declared dead and degraded mode
        recovers the block from a survivor).
    base_ms / factor / cap_ms:
        Attempt ``i`` (0-based) backs off ``min(cap, base * factor**i)``
        milliseconds before jitter.
    jitter:
        Fractional jitter: the delay is scaled by ``1 + jitter * u``
        with ``u ~ U[0, 1)`` from the caller-supplied generator.  Zero
        disables the draw entirely (no RNG consumption).
    """

    max_attempts: int = 4
    base_ms: float = 1.0
    factor: float = 2.0
    cap_ms: float = 50.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_ms <= 0 or self.cap_ms < self.base_ms:
            raise ConfigError(
                f"need 0 < base_ms <= cap_ms, got base={self.base_ms} "
                f"cap={self.cap_ms}"
            )
        if self.factor < 1.0:
            raise ConfigError(f"factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_ms(self, attempt: int, rng: np.random.Generator | None) -> float:
        """Delay before retrying after the *attempt*-th failure (0-based)."""
        delay = min(self.cap_ms, self.base_ms * self.factor**attempt)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay


#: The policy used when none is supplied to ``attach_faults``.
DEFAULT_RETRY = RetryPolicy()


@dataclass
class CircuitBreaker:
    """Per-disk consecutive-failure escalation.

    Every failed read attempt on a disk increments its counter; any
    success resets it.  Reaching *threshold* consecutive failures trips
    the breaker — the caller treats the disk as permanently failed.
    """

    threshold: int = 5
    _consecutive: dict[int, int] = field(default_factory=dict)
    trips: int = 0

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ConfigError(
                f"breaker threshold must be >= 1, got {self.threshold}"
            )

    def record_failure(self, disk: int) -> bool:
        """Count one failure on *disk*; True if the breaker trips now.

        The comparison is ``>=`` rather than ``==`` so a counter that
        somehow passes the threshold without tripping (a caller that
        inspects :meth:`failures` first, or a threshold lowered mid-run)
        still fires on the next failure instead of never.
        """
        n = self._consecutive.get(disk, 0) + 1
        self._consecutive[disk] = n
        if n >= self.threshold:
            self.trips += 1
            return True
        return False

    def record_success(self, disk: int) -> None:
        """A successful read closes the failure streak."""
        self._consecutive.pop(disk, None)

    def failures(self, disk: int) -> int:
        """Current consecutive-failure count for *disk*."""
        return self._consecutive.get(disk, 0)
