"""Rotating RAID-5-style parity for the fault-armed disk system.

With ``FaultPlan(redundancy="parity")`` the disk system keeps one parity
block per *write group*: consecutive written blocks accumulate into a
group until it spans ``D - 1`` distinct spindles (or would revisit one),
then the XOR of the members lands on the one disk the group does not
touch.  Under SRM's cyclic layout — block ``i`` of a run on disk
``(start + i) mod D`` — any ``D - 1`` consecutive blocks occupy
``D - 1`` distinct disks, so the free spindle rotates naturally; this
*is* RAID-5's rotating parity, falling out of the paper's striping rule.

The running XOR is accumulated in memory from the pristine block at
write time (the controller-NVRAM model), so a torn write never poisons
parity; the parity *block* is written out — and charged — when the
group closes.  Recovery is honest RAID arithmetic: a lost or torn
member is rebuilt by XOR over its siblings plus parity, every sibling
read charged as real parallel I/O (``faults.recovery_read_ios``) and
felt by the overlap engine as per-disk service penalties.  Losing two
members of one group (a second death mid-rebuild, or a tear plus a
death) is unrecoverable, exactly as on a real array, and raises.

Group membership is keyed by *allocation-time* addresses; degraded-mode
remaps are followed through :meth:`ParallelDiskSystem.resolve` at use
time, so members keep their identity as deaths relocate them.  Because
merges free input blocks mid-run, member slots are only *physically*
released once their whole group is freed — until then a freed member
stays readable as a reconstruction source for its siblings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..disks.block import Block, xor_accumulate
from ..errors import DataError, DiskDeadError

__all__ = ["ParityMember", "ParityGroup", "ParityStore", "PARITY_RUN_ID"]

#: ``run_id`` carried by parity blocks (never a real run's id).
PARITY_RUN_ID = -2


@dataclass(slots=True)
class ParityMember:
    """One data block tracked by a parity group.

    ``addr`` is the allocation-time address (stable across remaps);
    ``phys_disk`` is where the block landed at write time, used only for
    group-closure geometry.  The sealed ``checksum`` is the pristine
    CRC, so reconstructions are verified end to end even when the
    on-disk copy was torn.
    """

    addr: tuple
    phys_disk: int
    n_keys: int
    run_id: int
    index: int
    forecast: tuple
    checksum: int
    has_payloads: bool
    freed: bool = False


@dataclass
class ParityGroup:
    """A closed-or-open set of members protected by one parity block."""

    gid: int
    members: list = field(default_factory=list)
    disks: set = field(default_factory=set)
    parity_addr: tuple | None = None
    parity_disk: int | None = None
    sealed: bool = False
    has_torn: bool = False
    xor_keys: np.ndarray | None = None
    xor_payloads: np.ndarray | None = None
    dropped: bool = False


class ParityStore:
    """Bookkeeping and recovery arithmetic for ``redundancy="parity"``.

    Owned by a :class:`~repro.disks.system.ParallelDiskSystem` with
    faults armed; all I/O charging goes through the system's stats and
    the injector's recovery counters.
    """

    def __init__(self, system) -> None:
        self.system = system
        self.groups: list[ParityGroup] = []
        self._by_addr: dict = {}
        self._parity_addrs: dict = {}
        self._open: ParityGroup | None = None
        self._pending: list[ParityGroup] = []

    # -- geometry ---------------------------------------------------------

    def _alive(self) -> list[int]:
        dead = self.system.dead_disks
        return [d for d in range(self.system.n_disks) if d not in dead]

    def _target_size(self) -> int:
        """Members per group: one fewer than the alive spindle count."""
        return max(1, len(self._alive()) - 1)

    # -- write-path hooks -------------------------------------------------

    def add_block(self, addr, physical_disk: int, block: Block, torn: bool = False) -> bool:
        """Track a block just written at *addr* on *physical_disk*.

        Returns whether a requested *torn* injection may proceed: the
        group's single parity arm can absorb exactly one latent loss,
        so a second tear in the same group is suppressed (the draw was
        still consumed, keeping the RNG streams aligned).
        """
        g = self._open
        if g is not None and (
            physical_disk in g.disks or len(g.members) >= self._target_size()
        ):
            self._close_open()
            g = None
        if g is None:
            g = ParityGroup(gid=len(self.groups))
            self.groups.append(g)
            self._open = g
        eff_torn = torn and not g.has_torn
        if eff_torn:
            g.has_torn = True
        checksum = (
            block.checksum if block.checksum is not None else block.compute_checksum()
        )
        member = ParityMember(
            addr=addr,
            phys_disk=physical_disk,
            n_keys=int(block.keys.size),
            run_id=block.run_id,
            index=block.index,
            forecast=block.forecast,
            checksum=checksum,
            has_payloads=block.payloads is not None,
        )
        g.members.append(member)
        g.disks.add(physical_disk)
        g.xor_keys = xor_accumulate(g.xor_keys, block.keys)
        if block.payloads is not None:
            g.xor_payloads = xor_accumulate(g.xor_payloads, block.payloads)
        self._by_addr[addr] = (g, member)
        if len(g.members) >= self._target_size():
            self._close_open()
        return eff_torn

    def _close_open(self) -> None:
        g = self._open
        if g is None:
            return
        self._open = None
        if all(m.freed for m in g.members):
            # Fully freed before parity was ever needed: release now.
            self._physically_free(self._drop_group(g))
            return
        g.parity_disk = self._pick_parity_disk(g)
        self._pending.append(g)

    def _pick_parity_disk(self, g: ParityGroup) -> int:
        """The rotating slot: an alive disk the group does not occupy."""
        exclude = {self.system.resolve(m.addr).disk for m in g.members}
        candidates = [d for d in self._alive() if d not in exclude]
        if candidates:
            return candidates[0]
        # Post-death corner: the group spans every survivor.  Parity
        # co-locates with a member and protects one fewer loss.
        return self._alive()[0]

    def repick_parity_disk(self, g: ParityGroup) -> int:
        """Re-choose a parity target after its planned disk died."""
        g.parity_disk = self._pick_parity_disk(g)
        return g.parity_disk

    def drain_pending(self) -> list[tuple[ParityGroup, Block]]:
        """Closed groups whose parity block still needs to be written."""
        out = [(g, self._parity_block_from_xor(g)) for g in self._pending]
        self._pending = []
        return out

    def note_parity_written(self, g: ParityGroup, addr) -> None:
        """Record where *g*'s parity block landed; drops the NVRAM XOR."""
        g.parity_addr = addr
        g.sealed = True
        self._parity_addrs[addr] = g
        # From here on recovery must read parity from disk (charged) —
        # holding the in-memory XOR would make rebuilds free.
        g.xor_keys = None
        g.xor_payloads = None

    def seal_for_recovery(self) -> list[tuple[ParityGroup, Block]]:
        """Close the open group (if any) and hand back all unwritten parity.

        Called at death time so every group is recoverable from disk;
        the caller writes the returned parity blocks as charged I/O.
        """
        if self._open is not None and self._open.members:
            self._close_open()
        return self.drain_pending()

    def _parity_block_from_xor(self, g: ParityGroup) -> Block:
        blk = Block(
            keys=g.xor_keys.copy(),
            run_id=PARITY_RUN_ID,
            index=g.gid,
            payloads=None if g.xor_payloads is None else g.xor_payloads.copy(),
        )
        return blk.seal()

    # -- free deferral ----------------------------------------------------

    def note_free(self, addr) -> bool:
        """Handle a ``free(addr)``; True when the store owns the address.

        Member slots are released only when their whole group is freed,
        so partially-consumed groups keep every reconstruction source
        on disk.  The group's parity slot is released with it.
        """
        entry = self._by_addr.get(addr)
        if entry is None:
            return False
        g, member = entry
        member.freed = True
        if not all(m.freed for m in g.members):
            return True
        if g is self._open:
            self._open = None
        elif g in self._pending:
            self._pending.remove(g)
        self._physically_free(self._drop_group(g))
        return True

    def _drop_group(self, g: ParityGroup) -> list:
        addrs = [m.addr for m in g.members]
        for m in g.members:
            self._by_addr.pop(m.addr, None)
        if g.parity_addr is not None:
            addrs.append(g.parity_addr)
            self._parity_addrs.pop(g.parity_addr, None)
        g.dropped = True
        return addrs

    def _physically_free(self, addrs) -> None:
        system = self.system
        for a in addrs:
            p = system.resolve(a)
            if p.disk not in system.dead_disks:
                system.disks[p.disk].free(p.slot)

    # -- reconstruction ---------------------------------------------------

    def entry_for(self, addr):
        """The ``(group, member)`` tracking *addr*, or ``None``."""
        return self._by_addr.get(addr)

    def _read_entry(self, addr, read_disks: list[int]) -> Block:
        p = self.system.resolve(addr)
        if p.disk in self.system.dead_disks:
            raise DiskDeadError(
                f"parity group lost two members: sibling at {tuple(addr)} "
                f"resolves to dead disk {p.disk}"
            )
        read_disks.append(p.disk)
        return self.system.disks[p.disk].read(p.slot)

    def _charge_recovery_reads(self, read_disks: list[int]) -> int:
        """Charge reconstruction reads as real parallel rounds."""
        if not read_disks:
            return 0
        system = self.system
        rounds = 0
        used: set[int] = set()
        group: list[int] = []
        for d in read_disks:
            if d in used:
                self._charge_read_round(group)
                rounds += 1
                used, group = set(), []
            used.add(d)
            group.append(d)
        if group:
            self._charge_read_round(group)
            rounds += 1
        inj = system.faults
        inj.count_recovery_reads(rounds)
        for d in read_disks:
            inj.add_recovery_ops(d)
        return rounds

    def _charge_read_round(self, disks: list[int]) -> None:
        system = self.system
        system.stats.record_read(disks)
        system._advance_clock(len(disks))
        if system.trace is not None:
            system.trace.record("read", disks, system.elapsed_ms)

    def reconstruct_member(self, g: ParityGroup, member: ParityMember) -> Block:
        """XOR *member* back from its siblings and the parity source.

        Sibling reads (and the parity read, for sealed groups) are
        charged; the result is verified against the member's pristine
        CRC, so a wrong reconstruction can never be served silently.
        """
        read_disks: list[int] = []
        if g.sealed:
            pblk = self._read_entry(g.parity_addr, read_disks)
            if not pblk.verify():
                raise DataError(
                    f"parity block of group {g.gid} failed its own checksum"
                )
            acc_k = pblk.keys.copy()
            acc_p = None if pblk.payloads is None else pblk.payloads.copy()
        else:
            # Open group: the parity source is the in-memory running
            # XOR (controller NVRAM) — no parity read to charge.
            acc_k = g.xor_keys.copy()
            acc_p = None if g.xor_payloads is None else g.xor_payloads.copy()
        for sibling in g.members:
            if sibling is member:
                continue
            b = self._read_entry(sibling.addr, read_disks)
            if b.compute_checksum() != sibling.checksum:
                raise DataError(
                    f"parity group {g.gid} is doubly damaged: sibling at "
                    f"{tuple(sibling.addr)} is itself corrupt while "
                    f"{tuple(member.addr)} needs reconstruction"
                )
            acc_k = xor_accumulate(acc_k, b.keys)
            if b.payloads is not None:
                acc_p = xor_accumulate(acc_p, b.payloads)
        keys = acc_k[: member.n_keys]
        payloads = acc_p[: member.n_keys] if member.has_payloads else None
        blk = Block(
            keys=keys,
            run_id=member.run_id,
            index=member.index,
            forecast=member.forecast,
            payloads=payloads,
        ).seal()
        if blk.checksum != member.checksum:
            raise DataError(
                f"parity reconstruction of {tuple(member.addr)} failed "
                "verification against the sealed checksum"
            )
        self._charge_recovery_reads(read_disks)
        return blk

    def rebuild_parity_block(self, g: ParityGroup) -> Block:
        """Recompute a *lost* parity block by reading every member."""
        read_disks: list[int] = []
        acc_k = None
        acc_p = None
        for m in g.members:
            b = self._read_entry(m.addr, read_disks)
            if b.compute_checksum() != m.checksum:
                raise DataError(
                    f"cannot rebuild parity of group {g.gid}: member at "
                    f"{tuple(m.addr)} is corrupt and parity is lost"
                )
            acc_k = xor_accumulate(acc_k, b.keys)
            if b.payloads is not None:
                acc_p = xor_accumulate(acc_p, b.payloads)
        self._charge_recovery_reads(read_disks)
        blk = Block(
            keys=acc_k,
            run_id=PARITY_RUN_ID,
            index=g.gid,
            payloads=acc_p,
        )
        return blk.seal()

    def repair_in_place(self, addr) -> Block:
        """Rebuild the torn block at *addr* and rewrite it where it lives.

        The reconstruction reads are charged via
        :meth:`_charge_recovery_reads` and the rewrite as one parallel
        write; the repaired block replaces the torn bytes in its
        existing slot.
        """
        entry = self._by_addr.get(addr)
        if entry is None:
            raise DataError(
                f"torn block at {tuple(addr)} is not parity-protected"
            )
        g, member = entry
        blk = self.reconstruct_member(g, member)
        system = self.system
        p = system.resolve(addr)
        # Replace in place without cycling the slot through the free
        # list (free() would let allocate() hand the slot out again).
        system.disks[p.disk]._slots[p.slot] = blk
        system.stats.record_write([p.disk])
        system._advance_clock(1)
        if system.trace is not None:
            system.trace.record("write", [p.disk], system.elapsed_ms)
        system.faults.add_recovery_ops(p.disk)
        return blk
