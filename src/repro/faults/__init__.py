"""Fault injection and resilience for the simulated parallel disks.

The paper's flushing rule (§5, Definition 6) makes SRM naturally
restartable: any block evicted from memory can be re-read later because
runs are immutable once written.  This package pushes that observation
to its logical end — a disk system that keeps sorting *correctly*
through transient read failures, corrupted transfers, stragglers,
stall windows, and permanent disk loss:

* :mod:`~repro.faults.plan` — declarative, RNG-seeded fault plans and
  the :class:`FaultInjector` that replays them deterministically;
* :mod:`~repro.faults.retry` — capped exponential backoff with
  deterministic jitter, plus a per-disk circuit breaker;
* :mod:`~repro.faults.degraded` — permanent-failure handling: the dead
  disk's blocks migrate onto the survivors and the sort continues on
  ``D - 1`` spindles; plus checksum scrubbing for torn writes;
* :mod:`~repro.faults.parity` — rotating RAID-5-style parity groups
  behind ``FaultPlan(redundancy="parity")``: dead disks and torn
  writes rebuild by XOR over the survivors in charged I/O rounds;
* :mod:`~repro.faults.chaos` — the scenario sweep behind
  ``repro chaos``: every plan must yield bit-identical output, zero
  undetected corruptions, and truthful ``faults.*`` telemetry.

Arm a system with :meth:`ParallelDiskSystem.attach_faults
<repro.disks.system.ParallelDiskSystem.attach_faults>`, or pass a
:class:`FaultPlan` straight to :func:`~repro.core.mergesort.srm_sort` /
:func:`~repro.baselines.dsm.dsm_sort` via their ``faults`` argument.
"""

from .chaos import (
    ChaosReport,
    ChaosScenario,
    ScenarioResult,
    default_scenarios,
    run_chaos,
    run_cluster_chaos,
    run_service_chaos,
)
from .degraded import (
    DeathReport,
    ScrubReport,
    migrate_dead_disk,
    scrub_addresses,
    scrub_and_repair,
)
from .parity import ParityGroup, ParityMember, ParityStore
from .plan import (
    DiskDeath,
    FaultInjector,
    FaultPlan,
    FaultStats,
    ReadOutcome,
    StallWindow,
    WriteOutcome,
    corrupt_copy,
)
from .retry import DEFAULT_RETRY, CircuitBreaker, RetryPolicy

__all__ = [
    "ChaosReport",
    "ChaosScenario",
    "ScenarioResult",
    "default_scenarios",
    "run_chaos",
    "run_cluster_chaos",
    "run_service_chaos",
    "DeathReport",
    "ScrubReport",
    "migrate_dead_disk",
    "scrub_addresses",
    "scrub_and_repair",
    "ParityGroup",
    "ParityMember",
    "ParityStore",
    "DiskDeath",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "ReadOutcome",
    "StallWindow",
    "WriteOutcome",
    "corrupt_copy",
    "DEFAULT_RETRY",
    "CircuitBreaker",
    "RetryPolicy",
]
