"""Chaos harness: sweep deterministic fault plans over full sorts.

Each scenario arms one :class:`~repro.faults.plan.FaultPlan` on a fresh
disk system, runs the complete sort (SRM, and DSM where the scenario
applies), and checks the resilience contract:

* the sorted output is **bit-identical** to the fault-free reference —
  faults may cost I/O and time, never correctness;
* every injected corruption is caught by a block checksum
  (``undetected_corruptions == 0``);
* the fault telemetry (``faults.*`` counters, the backoff histogram,
  ``disk_death`` events) actually recorded what the plan injected.

Because every plan is seeded, a failing scenario is a *repro*, not a
flake: re-running the same ``(scenario, seed, geometry)`` replays the
identical fault sequence.

The harness is what ``repro chaos`` runs; :func:`run_chaos` returns a
:class:`ChaosReport` that renders as a table, serializes to JSONL, and
self-checks via :meth:`ChaosReport.failures`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.dsm import dsm_sort
from ..core.config import (
    DSMConfig,
    LatencyAwareConfig,
    OverlapConfig,
    SRMConfig,
    memory_records_for_k,
)
from ..core.mergesort import srm_sort
from ..telemetry import Telemetry
from ..telemetry.schema import (
    FAULT_RECOVERY_READ_IOS,
    FAULT_RETRIES,
    FAULT_TORN_DETECTED,
    FAULT_TORN_INJECTED,
    FAULT_TRANSIENT_FAILURES,
    FAULT_WRITE_FAILURES,
    H_FAULT_BACKOFF,
)
from .plan import DiskDeath, FaultPlan, StallWindow
from .retry import RetryPolicy


@dataclass(frozen=True, slots=True)
class ChaosScenario:
    """One named fault plan plus the properties it must exhibit.

    Attributes
    ----------
    name / description:
        Human-readable identity (stable across runs; used in reports).
    plan:
        The seeded fault plan to arm.
    overlap:
        Drive the SRM merges through the overlap engine so latency
        faults (stragglers, stalls, drained backoff) show up in the
        simulated makespan.  Ignored for DSM.
    retry:
        Retry-policy override (default :data:`~repro.faults.retry.DEFAULT_RETRY`).
    dsm:
        Whether the scenario also applies to the DSM baseline (latency
        scenarios do not: DSM never runs the overlap engine).
    expect:
        Property tags checked by :meth:`ChaosReport.failures`:
        ``"retries"`` (retry count must be > 0), ``"corruption"``
        (checksum detections must equal injections, > 0), ``"death"``
        (at least one disk death with recovered blocks),
        ``"write_faults"`` (transient write failures must have fired),
        ``"torn"`` (torn writes injected and every one detected),
        ``"recovery_reads"`` (charged parity reconstruction reads > 0),
        ``"double_death"`` (at least two disks died),
        ``"adaptive"`` (the latency-adaptive rerun must produce
        bit-identical output at a makespan no worse than the fixed
        policy's).  Cluster-sweep results add ``"node_loss"`` (a node
        died and its rebuild charged re-sent blocks and re-reads) and
        ``"skew"`` (partition skew must stay under the recorded
        ``_skew_bound``).
    adaptive:
        Rerun the scenario with the latency-adaptive scheduler armed
        (same plan, same seed) and record the adaptive-vs-fixed pair:
        ``adaptive_makespan_ms`` and ``adaptive_identical`` in the
        stats.  Only meaningful with ``overlap=True``.
    """

    name: str
    description: str
    plan: FaultPlan
    overlap: bool = False
    retry: RetryPolicy | None = None
    dsm: bool = True
    expect: frozenset = frozenset()
    adaptive: bool = False


@dataclass
class ScenarioResult:
    """Outcome of one (scenario, algorithm) chaos run."""

    scenario: str
    algorithm: str
    description: str
    identical: bool
    stats: dict
    parallel_ios: int
    io_overhead_pct: float
    makespan_ms: float | None = None
    makespan_overhead_pct: float | None = None
    metrics_ok: bool = True
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.identical and self.metrics_ok

    def row(self) -> dict:
        """Flat JSON-serializable record (one JSONL line)."""
        return {
            "type": "scenario",
            "scenario": self.scenario,
            "algorithm": self.algorithm,
            "description": self.description,
            "ok": self.ok,
            "identical": self.identical,
            "metrics_ok": self.metrics_ok,
            "error": self.error,
            "parallel_ios": self.parallel_ios,
            "io_overhead_pct": round(self.io_overhead_pct, 3),
            "makespan_ms": self.makespan_ms,
            "makespan_overhead_pct": (
                None
                if self.makespan_overhead_pct is None
                else round(self.makespan_overhead_pct, 3)
            ),
            "faults": self.stats,
        }


@dataclass
class ChaosReport:
    """All scenario outcomes of one chaos sweep."""

    n_records: int
    n_disks: int
    block_size: int
    merge_order: int
    seed: int
    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures()

    def failures(self) -> list[str]:
        """Every violated property, as one message per violation."""
        msgs: list[str] = []
        for r in self.results:
            tag = f"{r.scenario}/{r.algorithm}"
            if r.error is not None:
                msgs.append(f"{tag}: raised {r.error}")
                continue
            if not r.identical:
                msgs.append(f"{tag}: output differs from fault-free reference")
            if not r.metrics_ok:
                msgs.append(f"{tag}: fault metrics missing or inconsistent")
            s = r.stats
            if s.get("trace_exact") is False:
                msgs.append(
                    f"{tag}: traced makespan did not decompose exactly "
                    "along the critical path"
                )
            if s.get("undetected_corruptions", 0) != 0:
                msgs.append(
                    f"{tag}: {s['undetected_corruptions']} corruption(s) "
                    "escaped checksum detection"
                )
            expect = s.get("_expect", ())
            if "retries" in expect and s.get("retries", 0) <= 0:
                msgs.append(f"{tag}: plan injects failures but no retries ran")
            if "corruption" in expect:
                inj, det = s.get("corrupt_injected", 0), s.get("checksum_detected", 0)
                if inj <= 0 or det != inj:
                    msgs.append(
                        f"{tag}: corruption detection mismatch "
                        f"(injected={inj}, detected={det})"
                    )
            if "death" in expect:
                if s.get("disk_deaths", 0) < 1:
                    msgs.append(f"{tag}: plan kills a disk but none died")
                elif s.get("recovery_blocks", 0) <= 0:
                    msgs.append(f"{tag}: disk died but no blocks were recovered")
            if "write_faults" in expect and s.get("write_failures", 0) <= 0:
                msgs.append(
                    f"{tag}: plan injects write failures but none fired"
                )
            if "torn" in expect:
                inj = s.get("torn_writes_injected", 0)
                det = s.get("torn_writes_detected", 0)
                if inj <= 0 or det != inj:
                    msgs.append(
                        f"{tag}: torn-write detection mismatch "
                        f"(injected={inj}, detected={det})"
                    )
            if "recovery_reads" in expect and s.get("recovery_read_ios", 0) <= 0:
                msgs.append(
                    f"{tag}: parity recovery ran but charged no "
                    "reconstruction reads"
                )
            if "double_death" in expect and s.get("disk_deaths", 0) < 2:
                msgs.append(
                    f"{tag}: plan kills two disks but "
                    f"{s.get('disk_deaths', 0)} died"
                )
            if "adaptive" in expect:
                if s.get("adaptive_identical") is not True:
                    msgs.append(
                        f"{tag}: latency-adaptive rerun output differs "
                        "from the fixed-policy run"
                    )
                a_ms = s.get("adaptive_makespan_ms")
                if a_ms is None or r.makespan_ms is None:
                    msgs.append(
                        f"{tag}: latency-adaptive rerun recorded no makespan"
                    )
                elif a_ms > r.makespan_ms * (1.0 + 1e-9):
                    msgs.append(
                        f"{tag}: adaptive makespan {a_ms:.1f}ms is worse "
                        f"than the fixed policy's {r.makespan_ms:.1f}ms"
                    )
            if "node_loss" in expect:
                if s.get("node_losses", 0) < 1:
                    msgs.append(
                        f"{tag}: scenario kills a node but none was lost"
                    )
                elif (
                    s.get("rebuild_blocks_resent", 0) <= 0
                    or s.get("rebuild_read_ios", 0) <= 0
                ):
                    msgs.append(
                        f"{tag}: node was rebuilt but the recovery charged "
                        "no re-sent blocks or re-reads"
                    )
            if "skew" in expect:
                skew = s.get("partition_skew")
                bound = s.get("_skew_bound", 2.0)
                if skew is None:
                    msgs.append(f"{tag}: no partition skew was recorded")
                elif skew > bound:
                    msgs.append(
                        f"{tag}: partition skew {skew:.3f} exceeds the "
                        f"{bound:.1f} bound (bad splitters)"
                    )
        return msgs

    def rows(self) -> list[dict]:
        meta = {
            "type": "meta",
            "n_records": self.n_records,
            "n_disks": self.n_disks,
            "block_size": self.block_size,
            "merge_order": self.merge_order,
            "seed": self.seed,
            "passed": self.passed,
            "failures": self.failures(),
        }
        return [meta] + [r.row() for r in self.results]

    def write_jsonl(self, path: str) -> None:
        import json

        with open(path, "w") as fh:
            for row in self.rows():
                fh.write(json.dumps(row))
                fh.write("\n")

    def render(self) -> str:
        """Fixed-width table for the CLI."""
        header = (
            f"{'scenario':<12} {'algo':<4} {'ok':<3} {'ios':>6} "
            f"{'io+%':>7} {'retries':>7} {'detect':>6} {'deaths':>6} "
            f"{'recov':>6} {'makespan_ms':>12}"
        )
        lines = [header, "-" * len(header)]
        for r in self.results:
            s = r.stats
            mk = "-" if r.makespan_ms is None else f"{r.makespan_ms:.1f}"
            lines.append(
                f"{r.scenario:<12} {r.algorithm:<4} "
                f"{'yes' if r.ok else 'NO':<3} {r.parallel_ios:>6} "
                f"{r.io_overhead_pct:>6.1f}% {s.get('retries', 0):>7} "
                f"{s.get('checksum_detected', 0):>6} "
                f"{s.get('disk_deaths', 0):>6} "
                f"{s.get('recovery_blocks', 0):>6} {mk:>12}"
            )
        status = "PASS" if self.passed else "FAIL"
        lines.append("-" * len(header))
        lines.append(
            f"{status}: {sum(r.ok for r in self.results)}/{len(self.results)} "
            f"scenarios ok, {len(self.failures())} property violation(s)"
        )
        return "\n".join(lines)


def default_scenarios(
    n_disks: int,
    seed: int,
    death_after: int,
    quick: bool = False,
) -> list[ChaosScenario]:
    """The standard sweep: transient, corrupt, write storm, torn writes,
    death (replica and parity rebuild), double death, stragglers, stalls,
    breaker escalation, death during rebuild, and a combined plan.

    *death_after* positions permanent failures mid-sort (callers derive
    it from the fault-free run's per-disk operation count).  *quick*
    keeps the scenarios that exercise distinct code paths — transient
    retry, checksum detection, degraded mode, the write-fault ladder,
    torn-write repair, parity rebuild, and a two-death plan — and drops
    the latency/escalation variants.
    """
    victim = n_disks - 1
    second = 0 if victim != 0 else 1
    scenarios = [
        ChaosScenario(
            name="transient",
            description="8% transient read failures, retried with backoff",
            plan=FaultPlan(seed=seed, read_fail_p=0.08),
            expect=frozenset({"retries"}),
        ),
        ChaosScenario(
            name="corrupt",
            description="5% corrupted transfers, caught by checksums",
            plan=FaultPlan(seed=seed + 1, corrupt_p=0.05),
            expect=frozenset({"retries", "corruption"}),
        ),
        ChaosScenario(
            name="death",
            description=f"disk {victim} dies mid-sort; degraded mode",
            plan=FaultPlan(
                seed=seed + 2,
                death=DiskDeath(disk=victim, after_ops=death_after),
            ),
            expect=frozenset({"death"}),
        ),
        ChaosScenario(
            name="write_storm",
            description="12% transient write failures, retried with backoff",
            plan=FaultPlan(seed=seed + 7, write_fail_p=0.12),
            expect=frozenset({"retries", "write_faults"}),
        ),
        ChaosScenario(
            name="torn",
            description="5% torn writes; stale seals repaired from parity",
            plan=FaultPlan(
                seed=seed + 8, torn_write_p=0.05, redundancy="parity"
            ),
            expect=frozenset({"torn", "recovery_reads"}),
        ),
        ChaosScenario(
            name="parity_death",
            description=(
                f"disk {victim} dies; lost blocks rebuilt by charged "
                "XOR over the survivors"
            ),
            plan=FaultPlan(
                seed=seed + 9,
                redundancy="parity",
                deaths=(DiskDeath(disk=victim, after_ops=death_after),),
            ),
            expect=frozenset({"death", "recovery_reads"}),
        ),
    ]
    if n_disks >= 3:
        scenarios.append(
            ChaosScenario(
                name="double_death",
                description=(
                    f"disks {victim} and {second} die in sequence; "
                    "two nested degraded migrations"
                ),
                plan=FaultPlan(
                    seed=seed + 10,
                    deaths=(
                        DiskDeath(disk=victim, after_ops=death_after),
                        DiskDeath(
                            disk=second, after_ops=death_after + death_after // 2
                        ),
                    ),
                ),
                expect=frozenset({"death", "double_death"}),
            )
        )
    if quick:
        return scenarios
    if n_disks >= 3:
        scenarios.append(
            ChaosScenario(
                name="rebuild_death",
                description=(
                    f"disk {second} dies while absorbing disk {victim}'s "
                    "rebuild traffic (death during recovery)"
                ),
                # The second threshold sits just past the first, so the
                # recovery writes landing on the survivors are what
                # push the second victim over the line.
                plan=FaultPlan(
                    seed=seed + 11,
                    deaths=(
                        DiskDeath(disk=victim, after_ops=death_after),
                        DiskDeath(disk=second, after_ops=death_after + 8),
                    ),
                ),
                expect=frozenset({"death", "double_death"}),
            )
        )
    scenarios += [
        ChaosScenario(
            name="straggler",
            description="disk 1 serves 4x slower (overlap engine)",
            plan=FaultPlan(seed=seed + 3, latency_factors={1 % n_disks: 4.0}),
            overlap=True,
            dsm=False,
            adaptive=True,
            expect=frozenset({"adaptive"}),
        ),
        ChaosScenario(
            name="stall",
            description="disk 0 unresponsive for a 40ms window",
            plan=FaultPlan(
                seed=seed + 4,
                stalls=(StallWindow(disk=0, start_ms=5.0, duration_ms=40.0),),
            ),
            overlap=True,
            dsm=False,
            adaptive=True,
            expect=frozenset({"adaptive"}),
        ),
        ChaosScenario(
            name="breaker",
            description=f"failure burst on disk {victim} trips its breaker",
            plan=FaultPlan(
                seed=seed + 5,
                read_fail_p=0.30,
                max_consecutive_failures=8,
                fail_disks=(victim,),
            ),
            # Give the ladder more attempts than the breaker threshold
            # so escalation happens through the breaker, not exhaustion.
            retry=RetryPolicy(max_attempts=6),
            expect=frozenset({"retries", "death"}),
        ),
        ChaosScenario(
            name="combo",
            description="transient failures + straggler + mid-sort death",
            plan=FaultPlan(
                seed=seed + 6,
                read_fail_p=0.05,
                latency_factors={1 % n_disks: 3.0},
                death=DiskDeath(disk=victim, after_ops=death_after),
            ),
            overlap=True,
            expect=frozenset({"retries", "death"}),
        ),
    ]
    return scenarios


def _metrics_ok(tel: Telemetry, stats: dict) -> bool:
    """The registry must mirror what the injector's own stats counted."""
    reg = tel.registry
    if stats.get("retries", 0) > 0:
        if FAULT_RETRIES not in reg or H_FAULT_BACKOFF not in reg:
            return False
        if reg.get(FAULT_RETRIES).snapshot()["value"] != stats["retries"]:
            return False
        if reg.get(H_FAULT_BACKOFF).snapshot()["n"] != stats["retries"]:
            return False
    if stats.get("transient_failures", 0) > 0:
        if FAULT_TRANSIENT_FAILURES not in reg:
            return False
        snap = reg.get(FAULT_TRANSIENT_FAILURES).snapshot()
        if snap["value"] != stats["transient_failures"]:
            return False
    for key, name in (
        ("write_failures", FAULT_WRITE_FAILURES),
        ("torn_writes_injected", FAULT_TORN_INJECTED),
        ("torn_writes_detected", FAULT_TORN_DETECTED),
        ("recovery_read_ios", FAULT_RECOVERY_READ_IOS),
    ):
        if stats.get(key, 0) > 0:
            if name not in reg:
                return False
            if reg.get(name).snapshot()["value"] != stats[key]:
                return False
    return True


def run_chaos(
    n_records: int = 20_000,
    n_disks: int = 4,
    k: int = 2,
    block_size: int = 16,
    seed: int = 1234,
    quick: bool = False,
    algorithms: tuple[str, ...] = ("srm", "dsm"),
    cluster_nodes: int = 0,
    service: bool = True,
) -> ChaosReport:
    """Run the chaos sweep and return the report.

    The same input array is sorted fault-free once per algorithm (the
    bit-identity reference and the I/O baseline), then once per
    applicable scenario.  Deterministic end to end: the input, the run
    placements, and every fault draw derive from *seed*.  With
    *cluster_nodes* > 1 the report also carries the
    :func:`run_cluster_chaos` sweep on a cluster of that many nodes.
    """
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**40, size=n_records, dtype=np.int64)
    srm_cfg = SRMConfig.from_k(k=k, n_disks=n_disks, block_size=block_size)
    # The paper's equal-memory grid: DSM gets the same M as SRM.
    dsm_cfg = DSMConfig.from_memory(
        memory_records_for_k(k, n_disks, block_size), n_disks, block_size
    )
    report = ChaosReport(
        n_records=n_records,
        n_disks=n_disks,
        block_size=block_size,
        merge_order=srm_cfg.merge_order,
        seed=seed,
    )

    # Fault-free references.  Layout randomness is seeded separately
    # from the data so scenario runs can replay it exactly.
    ref_out, ref_res = srm_sort(keys, srm_cfg, rng=seed + 17)
    # Mid-sort, in per-disk block operations: each parallel I/O touches
    # a given disk at most once, so half the parallel I/O count lands
    # the death inside the merge phase.
    death_after = max(1, ref_res.total_parallel_ios // 2)
    overlap_cfg = OverlapConfig(mode="full", prefetch_depth=2)
    # The adaptive-vs-fixed pair: identical geometry, latency plane armed.
    adaptive_cfg = OverlapConfig(
        mode="full", prefetch_depth=2, latency=LatencyAwareConfig()
    )
    ref_overlap_ms: float | None = None
    ref_attr: dict | None = None
    # Lazy: analysis pulls in the whole package graph.
    from ..analysis.critical_path import analyze_collector, combine_attribution

    refs: dict[str, tuple[np.ndarray, int]] = {
        "srm": (ref_out, ref_res.total_parallel_ios)
    }
    if "dsm" in algorithms:
        d_out, d_res = dsm_sort(keys, dsm_cfg)
        refs["dsm"] = (d_out, d_res.total_parallel_ios)

    for sc in default_scenarios(n_disks, seed, death_after, quick=quick):
        for algo in algorithms:
            if algo == "dsm" and not sc.dsm:
                continue
            tel = Telemetry(harness="chaos", scenario=sc.name, algorithm=algo)
            makespan = overhead = None
            try:
                if algo == "srm":
                    if sc.overlap and ref_overlap_ms is None:
                        # The fault-free reference run is traced too, so
                        # each scenario's attribution reads as a *delta*
                        # against an undisturbed timeline.
                        ref_tel = Telemetry(harness="chaos", scenario="reference")
                        ref_col = ref_tel.attach_trace()
                        _, ro = srm_sort(
                            keys, srm_cfg, rng=seed + 17, overlap=overlap_cfg,
                            telemetry=ref_tel,
                        )
                        ref_overlap_ms = ro.simulated_merge_ms
                        ref_attr = combine_attribution(
                            analyze_collector(ref_col).values()
                        )
                    col = tel.attach_trace() if sc.overlap else None
                    out, res = srm_sort(
                        keys,
                        srm_cfg,
                        rng=seed + 17,
                        overlap=overlap_cfg if sc.overlap else None,
                        telemetry=tel,
                        faults=_armed(sc, n_disks, tel),
                    )
                    if sc.overlap:
                        makespan = res.simulated_merge_ms
                        if ref_overlap_ms:
                            overhead = 100.0 * (makespan / ref_overlap_ms - 1.0)
                    if sc.overlap and sc.adaptive:
                        # Same plan, same seed, same geometry — only the
                        # latency-adaptive plane differs, so the pair
                        # isolates the policy's effect.
                        a_out, a_res = srm_sort(
                            keys,
                            srm_cfg,
                            rng=seed + 17,
                            overlap=adaptive_cfg,
                            faults=sc.plan,
                        )
                        adaptive_ms = a_res.simulated_merge_ms
                        adaptive_identical = bool(np.array_equal(a_out, out))
                    else:
                        adaptive_ms = adaptive_identical = None
                else:
                    out, res = dsm_sort(
                        keys, dsm_cfg, telemetry=tel, faults=_armed(sc, n_disks, tel)
                    )
                system = res.system
                stats = system.faults.stats.snapshot()
                stats["_expect"] = sorted(sc.expect)
                if algo == "srm" and sc.adaptive and adaptive_ms is not None:
                    stats["adaptive_makespan_ms"] = adaptive_ms
                    stats["adaptive_identical"] = adaptive_identical
                if algo == "srm" and sc.overlap and col is not None:
                    analyses = analyze_collector(col)
                    attr = combine_attribution(analyses.values())
                    stats["attribution"] = {
                        c: round(ms, 3) for c, ms in attr.items() if ms
                    }
                    stats["trace_exact"] = all(
                        a.exact for a in analyses.values()
                    )
                    if ref_attr is not None:
                        stats["attribution_delta"] = {
                            c: round(attr.get(c, 0.0) - ref_attr.get(c, 0.0), 3)
                            for c in set(attr) | set(ref_attr)
                            if attr.get(c, 0.0) != ref_attr.get(c, 0.0)
                        }
                ref_keys, ref_ios = refs[algo]
                result = ScenarioResult(
                    scenario=sc.name,
                    algorithm=algo,
                    description=sc.description,
                    identical=bool(np.array_equal(out, ref_keys)),
                    stats=stats,
                    parallel_ios=res.total_parallel_ios,
                    io_overhead_pct=100.0
                    * (res.total_parallel_ios / ref_ios - 1.0),
                    makespan_ms=makespan,
                    makespan_overhead_pct=overhead,
                    metrics_ok=_metrics_ok(tel, stats),
                )
            except Exception as exc:  # noqa: BLE001 - the report carries it
                result = ScenarioResult(
                    scenario=sc.name,
                    algorithm=algo,
                    description=sc.description,
                    identical=False,
                    stats={},
                    parallel_ios=0,
                    io_overhead_pct=0.0,
                    error=f"{type(exc).__name__}: {exc}",
                )
            report.results.append(result)
    if cluster_nodes > 1:
        report.results.extend(
            run_cluster_chaos(
                n_records=n_records,
                n_nodes=cluster_nodes,
                n_disks=n_disks,
                k=k,
                block_size=block_size,
                seed=seed,
            )
        )
    if service:
        report.results.extend(
            run_service_chaos(
                n_disks=n_disks, k=k, block_size=block_size, seed=seed
            )
        )
    return report


def run_cluster_chaos(
    n_records: int = 20_000,
    n_nodes: int = 4,
    n_disks: int = 4,
    k: int = 2,
    block_size: int = 16,
    seed: int = 1234,
    skew_bound: float = 2.0,
) -> list[ScenarioResult]:
    """The cluster resilience sweep: node loss and skewed partitions.

    Two scenarios against a ``P = n_nodes`` cluster sort:

    * ``node_loss`` — a node dies mid-exchange (after round 1); the sort
      must still be bit-identical to the fault-free cluster reference,
      and the rebuild must have charged re-sent blocks plus re-reads;
    * ``skewed`` — Zipf(1.2) input; the output must be correct *and* the
      sample-based splitters must hold partition skew (max/mean shard
      size) under *skew_bound*.

    Returns :class:`ScenarioResult` rows (algorithm ``"cluster"``) ready
    to append to a :class:`ChaosReport`; both scenarios also validate
    every shard's on-disk invariants via
    :func:`repro.verify.check_cluster_shards`.
    """
    from ..cluster import ClusterConfig, NodeLoss, cluster_sort
    from ..telemetry.schema import (
        CLUSTER_NODE_LOSSES,
        CLUSTER_REBUILD_BLOCKS,
        CLUSTER_REBUILD_READ_IOS,
    )
    from ..verify import check_cluster_shards
    from ..workloads import zipf_keys

    cfg = SRMConfig.from_k(k=k, n_disks=n_disks, block_size=block_size)
    cluster = ClusterConfig(n_nodes=n_nodes)
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**40, size=n_records, dtype=np.int64)
    ref_out, ref_res = cluster_sort(keys, cluster, cfg, rng=seed + 17)

    def run_one(
        name: str,
        description: str,
        data: np.ndarray,
        reference: np.ndarray,
        ref_ios: int,
        loss: "NodeLoss | None",
        expect: frozenset,
    ) -> ScenarioResult:
        tel = Telemetry(harness="chaos", scenario=name, algorithm="cluster")
        try:
            out, res = cluster_sort(
                data, cluster, cfg, rng=seed + 17,
                telemetry=tel, node_loss=loss,
            )
            check_cluster_shards(res)
            stats = {
                "node_losses": res.exchange.node_losses,
                "rebuild_blocks_resent": res.exchange.rebuild_blocks_resent,
                "rebuild_read_ios": res.exchange.rebuild_read_ios,
                "partition_skew": round(res.partition_skew, 4),
                "exchange_rounds": res.exchange.rounds,
                "blocks_crossed": res.exchange.blocks_crossed,
                "_skew_bound": skew_bound,
                "_expect": sorted(expect),
            }
            reg = tel.registry
            metrics_ok = True
            for key, metric in (
                ("node_losses", CLUSTER_NODE_LOSSES),
                ("rebuild_blocks_resent", CLUSTER_REBUILD_BLOCKS),
                ("rebuild_read_ios", CLUSTER_REBUILD_READ_IOS),
            ):
                if stats[key] > 0 and (
                    metric not in reg
                    or reg.get(metric).snapshot()["value"] != stats[key]
                ):
                    metrics_ok = False
            return ScenarioResult(
                scenario=name,
                algorithm="cluster",
                description=description,
                identical=bool(np.array_equal(out, reference)),
                stats=stats,
                parallel_ios=res.total_parallel_ios,
                io_overhead_pct=100.0 * (res.total_parallel_ios / ref_ios - 1.0),
                makespan_ms=res.makespan_ms,
                metrics_ok=metrics_ok,
            )
        except Exception as exc:  # noqa: BLE001 - the report carries it
            return ScenarioResult(
                scenario=name,
                algorithm="cluster",
                description=description,
                identical=False,
                stats={},
                parallel_ios=0,
                io_overhead_pct=0.0,
                error=f"{type(exc).__name__}: {exc}",
            )

    victim = 1 % n_nodes
    results = [
        run_one(
            "node_loss",
            f"node {victim} dies after exchange round 1; rebuilt from "
            "durable input, charged",
            keys,
            ref_out,
            ref_res.total_parallel_ios,
            NodeLoss(node=victim, after_round=min(1, n_nodes - 1)),
            frozenset({"node_loss"}),
        )
    ]
    zipf = zipf_keys(n_records, alpha=1.2, n_distinct=500, rng=seed + 23)
    z_ref, z_res = cluster_sort(zipf, cluster, cfg, rng=seed + 17)
    results.append(
        run_one(
            "skewed",
            f"Zipf(1.2) duplicate-heavy input; splitters must keep "
            f"partition skew under {skew_bound:.1f}",
            zipf,
            np.sort(zipf),
            z_res.total_parallel_ios,
            None,
            frozenset({"skew"}),
        )
    )
    return results


def run_service_chaos(
    n_jobs: int = 4,
    n_disks: int = 4,
    k: int = 2,
    block_size: int = 16,
    seed: int = 1234,
) -> list[ScenarioResult]:
    """Blast-radius sweep for the multi-tenant service's shared farm.

    Faults on a shared system hit whichever tenant's round happens to be
    running, so the contract is isolation, not solo bit-identity (the
    interleaving itself shifts which ops the fault stream lands on):
    every tenant's job must still complete with its output a sorted
    permutation of its input, with zero undetected corruptions — one
    tenant's disk death must never corrupt a neighbor.

    Two scenarios against a fully backlogged two-tenant batch:

    * ``service_transient`` — transient read failures spread across all
      tenants' rounds, absorbed by retries;
    * ``service_death`` — a disk dies mid-service; every tenant runs
      degraded but correct.

    Returns :class:`ScenarioResult` rows (algorithm ``"service"``).
    """
    from ..service import ServiceConfig, SortService, TenantSpec
    from ..workloads import batch_arrivals

    cfg = SRMConfig.from_k(k=k, n_disks=n_disks, block_size=block_size)
    arrivals = batch_arrivals(
        n_jobs, n_tenants=2, min_records=500, max_records=1_200, rng=seed
    )
    tenants = tuple(
        TenantSpec(t) for t in sorted({a.tenant for a in arrivals})
    )

    def build(tel: Telemetry) -> SortService:
        svc = SortService(
            ServiceConfig(base_config=cfg, tenants=tenants, policy="rr"),
            telemetry=tel,
        )
        svc.submit_arrivals(arrivals)
        return svc

    # Fault-free reference: the I/O baseline and the death position
    # (after_ops counts per-disk block ops; each parallel I/O touches a
    # disk at most once, so half the total lands mid-service).
    ref = build(Telemetry(harness="chaos", scenario="service_reference")).run()
    ref_ios = sum(j.io.parallel_ios for j in ref.jobs)
    death_after = max(1, ref_ios // 2)
    victim = n_disks - 1

    scenarios = [
        (
            "service_transient",
            "8% transient read failures across all tenants' rounds",
            FaultPlan(seed=seed + 21, read_fail_p=0.08),
            frozenset({"retries"}),
        ),
        (
            "service_death",
            f"disk {victim} dies mid-service; every tenant degraded "
            "but uncorrupted",
            FaultPlan(
                seed=seed + 22,
                death=DiskDeath(disk=victim, after_ops=death_after),
            ),
            frozenset({"death"}),
        ),
    ]
    results: list[ScenarioResult] = []
    for name, description, plan, expect in scenarios:
        tel = Telemetry(harness="chaos", scenario=name, algorithm="service")
        try:
            svc = build(tel)
            # Before any block lands: writes are checksum-sealed from
            # the first installed input block onward.
            svc.system.attach_faults(plan, telemetry=tel)
            outcome = svc.run()
            isolated = all(
                job.state == "completed"
                and job.driver.sorted_keys is not None
                and bool(
                    np.array_equal(
                        job.driver.sorted_keys, np.sort(job.spec.keys)
                    )
                )
                for job in outcome.jobs
            )
            stats = svc.system.faults.stats.snapshot()
            stats["_expect"] = sorted(expect)
            stats["jobs_completed"] = len(outcome.completed)
            stats["n_tenants"] = len(tenants)
            ios = sum(j.io.parallel_ios for j in outcome.jobs)
            results.append(
                ScenarioResult(
                    scenario=name,
                    algorithm="service",
                    description=description,
                    identical=isolated,
                    stats=stats,
                    parallel_ios=ios,
                    io_overhead_pct=100.0 * (ios / ref_ios - 1.0),
                    metrics_ok=_metrics_ok(tel, stats),
                )
            )
        except Exception as exc:  # noqa: BLE001 - the report carries it
            results.append(
                ScenarioResult(
                    scenario=name,
                    algorithm="service",
                    description=description,
                    identical=False,
                    stats={},
                    parallel_ios=0,
                    io_overhead_pct=0.0,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
    return results


def _armed(sc: ChaosScenario, n_disks: int, tel: Telemetry):
    """Build the injector-arming payload for one scenario.

    ``srm_sort``/``dsm_sort`` forward a plan to ``attach_faults``; a
    scenario with a custom retry policy pre-builds the
    :class:`~repro.faults.plan.FaultInjector` (which ``attach_faults``
    also accepts) so the policy override travels with it.
    """
    if sc.retry is None:
        return sc.plan
    from .plan import FaultInjector

    return FaultInjector(sc.plan, n_disks, retry=sc.retry, telemetry=tel)
