"""Declarative, RNG-seeded fault plans and their injector.

A :class:`FaultPlan` is a pure description of what should go wrong:
transient read *and write* failures with probability ``p``, torn writes
that persist a corrupted block, straggler latency multipliers on chosen
spindles, stall windows, corrupted transfers, and a sequence of
permanent disk deaths.  The :class:`FaultInjector` turns a plan into
deterministic per-disk event streams — each disk gets its own child
generator from :func:`repro.rng.spawn`, and a stream is only consulted
when the matching probability is non-zero — so a seeded plan replays
bit-identically regardless of telemetry, overlap mode, or which
scenarios ran before it.

The injector is consulted from two places: the
:class:`~repro.disks.system.ParallelDiskSystem` block layer (what fails,
what gets corrupted, what dies) and the
:class:`~repro.disks.service.ServiceNetwork` queueing layer (how long
the surviving requests take).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Mapping, Optional

import numpy as np

from ..errors import ConfigError
from ..rng import spawn
from ..telemetry import TELEMETRY_OFF
from ..telemetry.schema import (
    EV_DISK_DEATH,
    FAULT_BREAKER_TRIPS,
    FAULT_CHECKSUM_DETECTED,
    FAULT_CORRUPT_INJECTED,
    FAULT_DEGRADED_SPLIT_IOS,
    FAULT_DISK_DEATHS,
    FAULT_PARITY_BLOCKS,
    FAULT_RECOVERY_BLOCKS,
    FAULT_RECOVERY_READ_IOS,
    FAULT_REDIRECTED_ALLOCS,
    FAULT_RETRIES,
    FAULT_STALL_MS,
    FAULT_TORN_DETECTED,
    FAULT_TORN_INJECTED,
    FAULT_TRANSIENT_FAILURES,
    FAULT_UNDETECTED_CORRUPTIONS,
    FAULT_WRITE_FAILURES,
    H_FAULT_BACKOFF,
    backoff_edges,
)
from .retry import DEFAULT_RETRY, RetryPolicy

__all__ = [
    "StallWindow",
    "DiskDeath",
    "FaultPlan",
    "FaultStats",
    "ReadOutcome",
    "WriteOutcome",
    "FaultInjector",
    "corrupt_copy",
]

#: Redundancy modes a plan may request from the disk system.
REDUNDANCY_MODES = ("none", "parity")


@dataclass(frozen=True, slots=True)
class StallWindow:
    """A spindle serves nothing during ``[start_ms, start_ms + duration_ms)``.

    Stalls act on the simulated service clock, so they are felt by the
    overlapped-I/O engine's :class:`~repro.disks.service.ServiceNetwork`
    (requests whose service would start inside the window wait for its
    end); the operation-counting layer is stall-transparent, exactly
    like a real elevator pause changes latencies but not I/O counts.
    """

    disk: int
    start_ms: float
    duration_ms: float

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise ConfigError(f"stall disk must be >= 0, got {self.disk}")
        if self.start_ms < 0 or self.duration_ms <= 0:
            raise ConfigError(
                f"stall window needs start >= 0 and duration > 0, got "
                f"[{self.start_ms}, +{self.duration_ms})"
            )

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms


@dataclass(frozen=True, slots=True)
class DiskDeath:
    """Permanent loss of *disk* once it has served *after_ops* block ops.

    Reads and writes both count, so "mid-merge" is expressible as half
    the disk's fault-free operation count.  The death fires on the next
    operation that would touch the disk; degraded mode then recovers its
    live blocks onto the survivors before the operation proceeds.
    """

    disk: int
    after_ops: int

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise ConfigError(f"death disk must be >= 0, got {self.disk}")
        if self.after_ops < 0:
            raise ConfigError(
                f"death after_ops must be >= 0, got {self.after_ops}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seedable schedule of injectable faults.

    Attributes
    ----------
    seed:
        Root seed for the per-disk event streams.
    read_fail_p:
        Per-read probability of a transient failure (the transfer
        returns garbage and must be retried).
    corrupt_p:
        Per-read probability that the transfer silently flips bits; the
        block checksum must catch it.
    max_consecutive_failures:
        Cap on injected back-to-back transient failures for one block
        read.  Keep it below the retry policy's ``max_attempts`` for
        retry-and-recover behaviour; raise it past the circuit-breaker
        threshold to exercise breaker escalation (disk death).
    fail_disks:
        Restrict transient failures and corruptions to these disks
        (``None`` = all disks).  A failure burst scoped to one spindle
        models a single flaky drive: its breaker trips while the
        survivors stay clean.
    write_fail_p:
        Per-write probability of a transient failure (the write does
        not persist and must be retried, with the same ladder/breaker
        escalation as reads).
    torn_write_p:
        Per-write probability that the write *appears* to succeed but
        persists a block whose contents no longer match its CRC seal —
        caught on the next read of that block, and repaired from parity
        when ``redundancy="parity"`` (fatal otherwise).  When parity is
        armed, at most one write per parity group is torn (a single
        parity arm can absorb exactly one latent loss per stripe).
    latency_factors:
        ``{disk: multiplier}`` straggler map; service times on listed
        spindles are scaled (felt by the overlap engine's clock).
    stalls:
        Stall windows on the simulated service clock.
    death:
        Optional permanent disk death (legacy single-death field; the
        injector merges it with *deaths*).
    deaths:
        A sequence of permanent disk deaths, each on its own victim;
        deaths may fire during another disk's recovery.
    redundancy:
        ``"none"`` (default) keeps the replica-rebuild recovery model;
        ``"parity"`` maintains a rotating RAID-5-style parity block per
        write group and recovers dead disks / torn writes by XOR over
        the survivors in *charged* read+write rounds.
    """

    seed: int = 0
    read_fail_p: float = 0.0
    corrupt_p: float = 0.0
    max_consecutive_failures: int = 2
    fail_disks: Optional[tuple[int, ...]] = None
    latency_factors: Mapping[int, float] = field(default_factory=dict)
    stalls: tuple[StallWindow, ...] = ()
    death: Optional[DiskDeath] = None
    write_fail_p: float = 0.0
    torn_write_p: float = 0.0
    deaths: tuple[DiskDeath, ...] = ()
    redundancy: str = "none"

    def __post_init__(self) -> None:
        for name in ("read_fail_p", "corrupt_p", "write_fail_p", "torn_write_p"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ConfigError(f"{name} must be in [0, 1), got {p}")
        if self.max_consecutive_failures < 0:
            raise ConfigError(
                "max_consecutive_failures must be >= 0, got "
                f"{self.max_consecutive_failures}"
            )
        if self.fail_disks is not None:
            object.__setattr__(self, "fail_disks", tuple(self.fail_disks))
            for disk in self.fail_disks:
                if disk < 0:
                    raise ConfigError(f"fail disk must be >= 0, got {disk}")
        for disk, f in self.latency_factors.items():
            if disk < 0 or f <= 0:
                raise ConfigError(
                    f"latency factor for disk {disk} must be > 0, got {f}"
                )
        object.__setattr__(self, "deaths", tuple(self.deaths))
        victims = [d.disk for d in self.all_deaths]
        if len(victims) != len(set(victims)):
            raise ConfigError(
                f"each disk may die at most once, got victims {victims}"
            )
        if self.redundancy not in REDUNDANCY_MODES:
            raise ConfigError(
                f"redundancy must be one of {REDUNDANCY_MODES}, "
                f"got {self.redundancy!r}"
            )

    @property
    def all_deaths(self) -> tuple[DiskDeath, ...]:
        """The full death schedule: the legacy ``death`` plus ``deaths``."""
        legacy = (self.death,) if self.death is not None else ()
        return legacy + self.deaths

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.read_fail_p == 0.0
            and self.corrupt_p == 0.0
            and self.write_fail_p == 0.0
            and self.torn_write_p == 0.0
            and not self.latency_factors
            and not self.stalls
            and not self.all_deaths
            and self.redundancy == "none"
        )

    def describe(self) -> str:
        """One-line human summary for reports and the chaos CLI."""
        parts = [f"seed={self.seed}"]
        if self.read_fail_p:
            parts.append(f"read_fail_p={self.read_fail_p}")
        if self.write_fail_p:
            parts.append(f"write_fail_p={self.write_fail_p}")
        if self.torn_write_p:
            parts.append(f"torn_write_p={self.torn_write_p}")
        if self.corrupt_p:
            parts.append(f"corrupt_p={self.corrupt_p}")
        if self.fail_disks is not None and (
            self.read_fail_p or self.corrupt_p
            or self.write_fail_p or self.torn_write_p
        ):
            parts.append(f"fail_disks={list(self.fail_disks)}")
        if self.latency_factors:
            parts.append(
                "stragglers={"
                + ", ".join(
                    f"{d}: x{f:g}" for d, f in sorted(self.latency_factors.items())
                )
                + "}"
            )
        if self.stalls:
            parts.append(f"stalls={len(self.stalls)}")
        for death in self.all_deaths:
            parts.append(
                f"death(disk={death.disk}, after={death.after_ops} ops)"
            )
        if self.redundancy != "none":
            parts.append(f"redundancy={self.redundancy}")
        return ", ".join(parts) if len(parts) > 1 else "no faults"


@dataclass
class FaultStats:
    """Injection and recovery counts, mirrored into the ``faults.*`` metrics."""

    transient_failures: int = 0
    retries: int = 0
    backoff_ms_total: float = 0.0
    corrupt_injected: int = 0
    checksum_detected: int = 0
    undetected_corruptions: int = 0
    disk_deaths: int = 0
    recovery_blocks: int = 0
    degraded_split_ios: int = 0
    breaker_trips: int = 0
    redirected_allocations: int = 0
    stall_ms: float = 0.0
    write_failures: int = 0
    torn_writes_injected: int = 0
    torn_writes_detected: int = 0
    recovery_read_ios: int = 0
    parity_blocks_written: int = 0

    def snapshot(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(slots=True)
class ReadOutcome:
    """What the plan decreed for one block read: failures, then the data.

    ``n_failures`` transient failures precede the successful transfer;
    ``corrupt`` flags that the first completed transfer arrives with
    flipped bits (a retry re-reads the pristine block).
    """

    n_failures: int = 0
    corrupt: bool = False


@dataclass(slots=True)
class WriteOutcome:
    """What the plan decreed for one block write.

    ``n_failures`` transient write failures precede the persisting
    attempt; ``torn`` flags that the persisting attempt stores a block
    whose contents no longer match its CRC seal (detected on the next
    read, not now — that is what makes the tear dangerous).
    """

    n_failures: int = 0
    torn: bool = False


def corrupt_copy(block, rng: np.random.Generator):
    """A copy of *block* with one key bit-flipped, checksum untouched.

    The stored block is never mutated — corruption models a bad
    *transfer*, so retrying the read observes the pristine data.
    """
    keys = block.keys.copy()
    pos = int(rng.integers(0, keys.size))
    keys[pos] = np.int64(keys[pos]) ^ np.int64(0x5A5A5A5A)
    cls = type(block)
    return cls(
        keys=keys,
        run_id=block.run_id,
        index=block.index,
        forecast=block.forecast,
        payloads=None if block.payloads is None else block.payloads.copy(),
        checksum=block.checksum,
    )


def _validate_targets(plan: FaultPlan, n_disks: int) -> None:
    """Reject any plan feature aimed at a disk the system does not have.

    Every targeting surface goes through this one helper —
    ``fail_disks``, ``latency_factors``, ``stalls``, and the death
    schedule — so a typo'd disk id raises :class:`ConfigError` instead
    of being silently ignored.
    """
    targets = [("fail_disks", d) for d in plan.fail_disks or ()]
    targets += [("latency factor", d) for d in plan.latency_factors]
    targets += [("stall window", w.disk) for w in plan.stalls]
    targets += [("death", d.disk) for d in plan.all_deaths]
    for kind, disk in targets:
        if disk >= n_disks:
            raise ConfigError(
                f"{kind} targets disk {disk}, system has D={n_disks}"
            )
    if plan.all_deaths:
        if n_disks < 2:
            raise ConfigError(
                "a disk death needs at least one survivor (D >= 2)"
            )
        if len(plan.all_deaths) >= n_disks:
            raise ConfigError(
                f"{len(plan.all_deaths)} deaths on D={n_disks} disks would "
                "leave no survivor"
            )


class FaultInjector:
    """Executes a :class:`FaultPlan` as deterministic per-disk streams.

    Parameters
    ----------
    plan:
        The fault schedule.
    n_disks:
        ``D`` of the system under test; plan references outside
        ``0..D-1`` (and a death with no possible survivor) are rejected.
    retry:
        Backoff policy; its parameters shape the backoff histogram
        buckets.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; the injector
        mirrors every :class:`FaultStats` field into the canonical
        ``faults.*`` metrics and emits a ``disk_death`` event per loss.
    """

    def __init__(
        self,
        plan: FaultPlan,
        n_disks: int,
        retry: RetryPolicy | None = None,
        telemetry=None,
    ) -> None:
        if n_disks < 1:
            raise ConfigError(f"need at least one disk, got D={n_disks}")
        _validate_targets(plan, n_disks)
        self.plan = plan
        self.n_disks = n_disks
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.stats = FaultStats()
        self._rngs = spawn(plan.seed, n_disks)
        self._ops = [0] * n_disks
        self._dead: set[int] = set()
        self._death_after = {d.disk: d.after_ops for d in plan.all_deaths}
        #: Backoff penalties accumulated by the synchronous retry loop,
        #: drained into the queueing model by ``ServiceNetwork.submit``.
        self._penalty_ms = [0.0] * n_disks
        #: Recovery block-ops (charged reconstruction I/O) accumulated by
        #: degraded mode, drained as service-time penalties by
        #: ``ServiceNetwork.submit`` so rebuilds show up in the makespan.
        self._recovery_ops = [0] * n_disks
        self._stalls_by_disk: dict[int, list[StallWindow]] = {}
        for w in plan.stalls:
            self._stalls_by_disk.setdefault(w.disk, []).append(w)
        for ws in self._stalls_by_disk.values():
            ws.sort(key=lambda w: w.start_ms)
        tel = telemetry if telemetry is not None else TELEMETRY_OFF
        self._c_transient = tel.counter(FAULT_TRANSIENT_FAILURES)
        self._c_retries = tel.counter(FAULT_RETRIES)
        self._c_corrupt = tel.counter(FAULT_CORRUPT_INJECTED)
        self._c_detected = tel.counter(FAULT_CHECKSUM_DETECTED)
        self._c_undetected = tel.counter(FAULT_UNDETECTED_CORRUPTIONS)
        self._c_deaths = tel.counter(FAULT_DISK_DEATHS)
        self._c_recovered = tel.counter(FAULT_RECOVERY_BLOCKS)
        self._c_split = tel.counter(FAULT_DEGRADED_SPLIT_IOS)
        self._c_breaker = tel.counter(FAULT_BREAKER_TRIPS)
        self._c_redirect = tel.counter(FAULT_REDIRECTED_ALLOCS)
        self._c_stall = tel.counter(FAULT_STALL_MS)
        self._c_write_fail = tel.counter(FAULT_WRITE_FAILURES)
        self._c_torn_inj = tel.counter(FAULT_TORN_INJECTED)
        self._c_torn_det = tel.counter(FAULT_TORN_DETECTED)
        self._c_recovery_reads = tel.counter(FAULT_RECOVERY_READ_IOS)
        self._c_parity = tel.counter(FAULT_PARITY_BLOCKS)
        self._h_backoff = tel.histogram(
            H_FAULT_BACKOFF,
            backoff_edges(self.retry.base_ms, self.retry.cap_ms, self.retry.factor),
        )
        self._tel = tel

    # -- RNG access -------------------------------------------------------

    def rng(self, disk: int) -> np.random.Generator:
        """The deterministic event stream of *disk*."""
        return self._rngs[disk]

    # -- block-layer decisions -------------------------------------------

    def plan_read(self, disk: int) -> ReadOutcome:
        """Decide this read's fate on *disk* (consumes the disk's stream).

        Streams are consulted only for features the plan enables, so a
        plan with ``corrupt_p=0`` draws no corruption randomness — two
        plans differing in one feature stay comparable on the others.
        """
        out = ReadOutcome()
        plan = self.plan
        if plan.fail_disks is not None and disk not in plan.fail_disks:
            return out
        if plan.read_fail_p > 0.0:
            gen = self._rngs[disk]
            while (
                out.n_failures < plan.max_consecutive_failures
                and float(gen.random()) < plan.read_fail_p
            ):
                out.n_failures += 1
        if plan.corrupt_p > 0.0:
            out.corrupt = float(self._rngs[disk].random()) < plan.corrupt_p
        return out

    def plan_write(self, disk: int) -> WriteOutcome:
        """Decide this write's fate on *disk* (consumes the disk's stream).

        Shares the per-disk stream with :meth:`plan_read`, and is
        feature-gated the same way: a plan with ``write_fail_p=0`` and
        ``torn_write_p=0`` draws nothing, so read-only plans replay
        identically whether or not the write path consults the injector.
        """
        out = WriteOutcome()
        plan = self.plan
        if plan.fail_disks is not None and disk not in plan.fail_disks:
            return out
        if plan.write_fail_p > 0.0:
            gen = self._rngs[disk]
            while (
                out.n_failures < plan.max_consecutive_failures
                and float(gen.random()) < plan.write_fail_p
            ):
                out.n_failures += 1
        if plan.torn_write_p > 0.0:
            out.torn = float(self._rngs[disk].random()) < plan.torn_write_p
        return out

    def note_op(self, disk: int) -> None:
        """Count one completed block operation on *disk* (read or write)."""
        self._ops[disk] += 1

    def ops_on(self, disk: int) -> int:
        return self._ops[disk]

    def death_due(self, disk: int) -> bool:
        """True if a planned death should fire before touching *disk*."""
        after = self._death_after.get(disk)
        return (
            after is not None
            and disk not in self._dead
            and self._ops[disk] >= after
        )

    def is_dead(self, disk: int) -> bool:
        return disk in self._dead

    def mark_dead(self, disk: int, trigger: str, recovered_blocks: int) -> None:
        """Record a permanent disk loss (after migration completed)."""
        self._dead.add(disk)
        self.stats.disk_deaths += 1
        self.stats.recovery_blocks += recovered_blocks
        self._c_deaths.inc()
        self._c_recovered.inc(recovered_blocks)
        self._tel.event(
            EV_DISK_DEATH,
            disk=disk,
            trigger=trigger,
            recovered_blocks=recovered_blocks,
            ops_served=self._ops[disk],
        )

    # -- accounting hooks -------------------------------------------------

    def count_transient(self) -> None:
        self.stats.transient_failures += 1
        self._c_transient.inc()

    def count_retry(self, disk: int, backoff_ms: float) -> None:
        self.stats.retries += 1
        self.stats.backoff_ms_total += backoff_ms
        self._c_retries.inc()
        self._h_backoff.observe(backoff_ms)
        self._penalty_ms[disk] += backoff_ms

    def count_corrupt(self) -> None:
        self.stats.corrupt_injected += 1
        self._c_corrupt.inc()

    def count_detected(self) -> None:
        self.stats.checksum_detected += 1
        self._c_detected.inc()

    def count_undetected(self) -> None:
        self.stats.undetected_corruptions += 1
        self._c_undetected.inc()

    def count_split_ios(self, extra_rounds: int) -> None:
        self.stats.degraded_split_ios += extra_rounds
        self._c_split.inc(extra_rounds)

    def count_breaker_trip(self) -> None:
        self.stats.breaker_trips += 1
        self._c_breaker.inc()

    def count_redirect(self) -> None:
        self.stats.redirected_allocations += 1
        self._c_redirect.inc()

    def count_write_failure(self) -> None:
        self.stats.write_failures += 1
        self._c_write_fail.inc()

    def count_torn_injected(self) -> None:
        self.stats.torn_writes_injected += 1
        self._c_torn_inj.inc()

    def count_torn_detected(self) -> None:
        self.stats.torn_writes_detected += 1
        self._c_torn_det.inc()

    def count_recovery_reads(self, rounds: int) -> None:
        self.stats.recovery_read_ios += rounds
        self._c_recovery_reads.inc(rounds)

    def count_parity_block(self) -> None:
        self.stats.parity_blocks_written += 1
        self._c_parity.inc()

    # -- queueing-layer hooks (ServiceNetwork) ----------------------------

    def latency_factor(self, disk: int) -> float:
        """Straggler multiplier for *disk* (1.0 when unlisted)."""
        return float(self.plan.latency_factors.get(disk, 1.0))

    def stall_release(self, disk: int, candidate_ms: float) -> float:
        """Earliest service start at or after *candidate_ms* on *disk*.

        A start landing inside a stall window slides to the window's
        end (repeatedly, for chained windows); the slid time is counted
        as ``faults.stall_ms``.
        """
        windows = self._stalls_by_disk.get(disk)
        if not windows:
            # A disk with no stall windows serves at the candidate time;
            # returning 0.0 here only worked because ServiceNetwork fed
            # the result into a max-like ``not_before``.
            return candidate_ms
        t = candidate_ms
        moved = True
        while moved:
            moved = False
            for w in windows:
                if w.start_ms <= t < w.end_ms:
                    t = w.end_ms
                    moved = True
        if t > candidate_ms:
            self.stats.stall_ms += t - candidate_ms
            self._c_stall.inc(t - candidate_ms)
        return t

    def take_penalty_ms(self, disk: int) -> float:
        """Drain retry/backoff penalties accumulated for *disk*."""
        p = self._penalty_ms[disk]
        if p:
            self._penalty_ms[disk] = 0.0
        return p

    def add_recovery_ops(self, disk: int, n: int = 1) -> None:
        """Queue *n* charged recovery block-ops on *disk* for the engine."""
        self._recovery_ops[disk] += n

    def take_recovery_ops(self, disk: int) -> int:
        """Drain recovery block-ops accumulated for *disk*."""
        n = self._recovery_ops[disk]
        if n:
            self._recovery_ops[disk] = 0
        return n
