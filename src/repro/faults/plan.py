"""Declarative, RNG-seeded fault plans and their injector.

A :class:`FaultPlan` is a pure description of what should go wrong:
transient read failures with probability ``p``, straggler latency
multipliers on chosen spindles, stall windows, corrupted transfers, and
a permanent disk death at operation ``k``.  The :class:`FaultInjector`
turns a plan into deterministic per-disk event streams — each disk gets
its own child generator from :func:`repro.rng.spawn`, and a stream is
only consulted when the matching probability is non-zero — so a seeded
plan replays bit-identically regardless of telemetry, overlap mode, or
which scenarios ran before it.

The injector is consulted from two places: the
:class:`~repro.disks.system.ParallelDiskSystem` block layer (what fails,
what gets corrupted, what dies) and the
:class:`~repro.disks.service.ServiceNetwork` queueing layer (how long
the surviving requests take).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Mapping, Optional

import numpy as np

from ..errors import ConfigError
from ..rng import spawn
from ..telemetry import TELEMETRY_OFF
from ..telemetry.schema import (
    EV_DISK_DEATH,
    FAULT_BREAKER_TRIPS,
    FAULT_CHECKSUM_DETECTED,
    FAULT_CORRUPT_INJECTED,
    FAULT_DEGRADED_SPLIT_IOS,
    FAULT_DISK_DEATHS,
    FAULT_RECOVERY_BLOCKS,
    FAULT_REDIRECTED_ALLOCS,
    FAULT_RETRIES,
    FAULT_STALL_MS,
    FAULT_TRANSIENT_FAILURES,
    FAULT_UNDETECTED_CORRUPTIONS,
    H_FAULT_BACKOFF,
    backoff_edges,
)
from .retry import DEFAULT_RETRY, RetryPolicy

__all__ = [
    "StallWindow",
    "DiskDeath",
    "FaultPlan",
    "FaultStats",
    "ReadOutcome",
    "FaultInjector",
    "corrupt_copy",
]


@dataclass(frozen=True, slots=True)
class StallWindow:
    """A spindle serves nothing during ``[start_ms, start_ms + duration_ms)``.

    Stalls act on the simulated service clock, so they are felt by the
    overlapped-I/O engine's :class:`~repro.disks.service.ServiceNetwork`
    (requests whose service would start inside the window wait for its
    end); the operation-counting layer is stall-transparent, exactly
    like a real elevator pause changes latencies but not I/O counts.
    """

    disk: int
    start_ms: float
    duration_ms: float

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise ConfigError(f"stall disk must be >= 0, got {self.disk}")
        if self.start_ms < 0 or self.duration_ms <= 0:
            raise ConfigError(
                f"stall window needs start >= 0 and duration > 0, got "
                f"[{self.start_ms}, +{self.duration_ms})"
            )

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms


@dataclass(frozen=True, slots=True)
class DiskDeath:
    """Permanent loss of *disk* once it has served *after_ops* block ops.

    Reads and writes both count, so "mid-merge" is expressible as half
    the disk's fault-free operation count.  The death fires on the next
    operation that would touch the disk; degraded mode then recovers its
    live blocks onto the survivors before the operation proceeds.
    """

    disk: int
    after_ops: int

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise ConfigError(f"death disk must be >= 0, got {self.disk}")
        if self.after_ops < 0:
            raise ConfigError(
                f"death after_ops must be >= 0, got {self.after_ops}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seedable schedule of injectable faults.

    Attributes
    ----------
    seed:
        Root seed for the per-disk event streams.
    read_fail_p:
        Per-read probability of a transient failure (the transfer
        returns garbage and must be retried).
    corrupt_p:
        Per-read probability that the transfer silently flips bits; the
        block checksum must catch it.
    max_consecutive_failures:
        Cap on injected back-to-back transient failures for one block
        read.  Keep it below the retry policy's ``max_attempts`` for
        retry-and-recover behaviour; raise it past the circuit-breaker
        threshold to exercise breaker escalation (disk death).
    fail_disks:
        Restrict transient failures and corruptions to these disks
        (``None`` = all disks).  A failure burst scoped to one spindle
        models a single flaky drive: its breaker trips while the
        survivors stay clean.
    latency_factors:
        ``{disk: multiplier}`` straggler map; service times on listed
        spindles are scaled (felt by the overlap engine's clock).
    stalls:
        Stall windows on the simulated service clock.
    death:
        Optional permanent disk death.
    """

    seed: int = 0
    read_fail_p: float = 0.0
    corrupt_p: float = 0.0
    max_consecutive_failures: int = 2
    fail_disks: Optional[tuple[int, ...]] = None
    latency_factors: Mapping[int, float] = field(default_factory=dict)
    stalls: tuple[StallWindow, ...] = ()
    death: Optional[DiskDeath] = None

    def __post_init__(self) -> None:
        for name in ("read_fail_p", "corrupt_p"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ConfigError(f"{name} must be in [0, 1), got {p}")
        if self.max_consecutive_failures < 0:
            raise ConfigError(
                "max_consecutive_failures must be >= 0, got "
                f"{self.max_consecutive_failures}"
            )
        if self.fail_disks is not None:
            object.__setattr__(self, "fail_disks", tuple(self.fail_disks))
            for disk in self.fail_disks:
                if disk < 0:
                    raise ConfigError(f"fail disk must be >= 0, got {disk}")
        for disk, f in self.latency_factors.items():
            if disk < 0 or f <= 0:
                raise ConfigError(
                    f"latency factor for disk {disk} must be > 0, got {f}"
                )

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.read_fail_p == 0.0
            and self.corrupt_p == 0.0
            and not self.latency_factors
            and not self.stalls
            and self.death is None
        )

    def describe(self) -> str:
        """One-line human summary for reports and the chaos CLI."""
        parts = [f"seed={self.seed}"]
        if self.read_fail_p:
            parts.append(f"read_fail_p={self.read_fail_p}")
        if self.corrupt_p:
            parts.append(f"corrupt_p={self.corrupt_p}")
        if self.fail_disks is not None and (self.read_fail_p or self.corrupt_p):
            parts.append(f"fail_disks={list(self.fail_disks)}")
        if self.latency_factors:
            parts.append(
                "stragglers={"
                + ", ".join(
                    f"{d}: x{f:g}" for d, f in sorted(self.latency_factors.items())
                )
                + "}"
            )
        if self.stalls:
            parts.append(f"stalls={len(self.stalls)}")
        if self.death is not None:
            parts.append(
                f"death(disk={self.death.disk}, after={self.death.after_ops} ops)"
            )
        return ", ".join(parts) if len(parts) > 1 else "no faults"


@dataclass
class FaultStats:
    """Injection and recovery counts, mirrored into the ``faults.*`` metrics."""

    transient_failures: int = 0
    retries: int = 0
    backoff_ms_total: float = 0.0
    corrupt_injected: int = 0
    checksum_detected: int = 0
    undetected_corruptions: int = 0
    disk_deaths: int = 0
    recovery_blocks: int = 0
    degraded_split_ios: int = 0
    breaker_trips: int = 0
    redirected_allocations: int = 0
    stall_ms: float = 0.0

    def snapshot(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(slots=True)
class ReadOutcome:
    """What the plan decreed for one block read: failures, then the data.

    ``n_failures`` transient failures precede the successful transfer;
    ``corrupt`` flags that the first completed transfer arrives with
    flipped bits (a retry re-reads the pristine block).
    """

    n_failures: int = 0
    corrupt: bool = False


def corrupt_copy(block, rng: np.random.Generator):
    """A copy of *block* with one key bit-flipped, checksum untouched.

    The stored block is never mutated — corruption models a bad
    *transfer*, so retrying the read observes the pristine data.
    """
    keys = block.keys.copy()
    pos = int(rng.integers(0, keys.size))
    keys[pos] = np.int64(keys[pos]) ^ np.int64(0x5A5A5A5A)
    cls = type(block)
    return cls(
        keys=keys,
        run_id=block.run_id,
        index=block.index,
        forecast=block.forecast,
        payloads=None if block.payloads is None else block.payloads.copy(),
        checksum=block.checksum,
    )


class FaultInjector:
    """Executes a :class:`FaultPlan` as deterministic per-disk streams.

    Parameters
    ----------
    plan:
        The fault schedule.
    n_disks:
        ``D`` of the system under test; plan references outside
        ``0..D-1`` (and a death with no possible survivor) are rejected.
    retry:
        Backoff policy; its parameters shape the backoff histogram
        buckets.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; the injector
        mirrors every :class:`FaultStats` field into the canonical
        ``faults.*`` metrics and emits a ``disk_death`` event per loss.
    """

    def __init__(
        self,
        plan: FaultPlan,
        n_disks: int,
        retry: RetryPolicy | None = None,
        telemetry=None,
    ) -> None:
        if n_disks < 1:
            raise ConfigError(f"need at least one disk, got D={n_disks}")
        for disk in plan.fail_disks or ():
            if disk >= n_disks:
                raise ConfigError(
                    f"fail_disks targets disk {disk}, system has D={n_disks}"
                )
        for disk in plan.latency_factors:
            if disk >= n_disks:
                raise ConfigError(
                    f"latency factor targets disk {disk}, system has D={n_disks}"
                )
        for w in plan.stalls:
            if w.disk >= n_disks:
                raise ConfigError(
                    f"stall window targets disk {w.disk}, system has D={n_disks}"
                )
        if plan.death is not None:
            if plan.death.disk >= n_disks:
                raise ConfigError(
                    f"death targets disk {plan.death.disk}, system has D={n_disks}"
                )
            if n_disks < 2:
                raise ConfigError(
                    "a disk death needs at least one survivor (D >= 2)"
                )
        self.plan = plan
        self.n_disks = n_disks
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.stats = FaultStats()
        self._rngs = spawn(plan.seed, n_disks)
        self._ops = [0] * n_disks
        self._dead: set[int] = set()
        #: Backoff penalties accumulated by the synchronous retry loop,
        #: drained into the queueing model by ``ServiceNetwork.submit``.
        self._penalty_ms = [0.0] * n_disks
        self._stalls_by_disk: dict[int, list[StallWindow]] = {}
        for w in plan.stalls:
            self._stalls_by_disk.setdefault(w.disk, []).append(w)
        for ws in self._stalls_by_disk.values():
            ws.sort(key=lambda w: w.start_ms)
        tel = telemetry if telemetry is not None else TELEMETRY_OFF
        self._c_transient = tel.counter(FAULT_TRANSIENT_FAILURES)
        self._c_retries = tel.counter(FAULT_RETRIES)
        self._c_corrupt = tel.counter(FAULT_CORRUPT_INJECTED)
        self._c_detected = tel.counter(FAULT_CHECKSUM_DETECTED)
        self._c_undetected = tel.counter(FAULT_UNDETECTED_CORRUPTIONS)
        self._c_deaths = tel.counter(FAULT_DISK_DEATHS)
        self._c_recovered = tel.counter(FAULT_RECOVERY_BLOCKS)
        self._c_split = tel.counter(FAULT_DEGRADED_SPLIT_IOS)
        self._c_breaker = tel.counter(FAULT_BREAKER_TRIPS)
        self._c_redirect = tel.counter(FAULT_REDIRECTED_ALLOCS)
        self._c_stall = tel.counter(FAULT_STALL_MS)
        self._h_backoff = tel.histogram(
            H_FAULT_BACKOFF,
            backoff_edges(self.retry.base_ms, self.retry.cap_ms, self.retry.factor),
        )
        self._tel = tel

    # -- RNG access -------------------------------------------------------

    def rng(self, disk: int) -> np.random.Generator:
        """The deterministic event stream of *disk*."""
        return self._rngs[disk]

    # -- block-layer decisions -------------------------------------------

    def plan_read(self, disk: int) -> ReadOutcome:
        """Decide this read's fate on *disk* (consumes the disk's stream).

        Streams are consulted only for features the plan enables, so a
        plan with ``corrupt_p=0`` draws no corruption randomness — two
        plans differing in one feature stay comparable on the others.
        """
        out = ReadOutcome()
        plan = self.plan
        if plan.fail_disks is not None and disk not in plan.fail_disks:
            return out
        if plan.read_fail_p > 0.0:
            gen = self._rngs[disk]
            while (
                out.n_failures < plan.max_consecutive_failures
                and float(gen.random()) < plan.read_fail_p
            ):
                out.n_failures += 1
        if plan.corrupt_p > 0.0:
            out.corrupt = float(self._rngs[disk].random()) < plan.corrupt_p
        return out

    def note_op(self, disk: int) -> None:
        """Count one completed block operation on *disk* (read or write)."""
        self._ops[disk] += 1

    def ops_on(self, disk: int) -> int:
        return self._ops[disk]

    def death_due(self, disk: int) -> bool:
        """True if the planned death should fire before touching *disk*."""
        d = self.plan.death
        return (
            d is not None
            and d.disk == disk
            and disk not in self._dead
            and self._ops[disk] >= d.after_ops
        )

    def is_dead(self, disk: int) -> bool:
        return disk in self._dead

    def mark_dead(self, disk: int, trigger: str, recovered_blocks: int) -> None:
        """Record a permanent disk loss (after migration completed)."""
        self._dead.add(disk)
        self.stats.disk_deaths += 1
        self.stats.recovery_blocks += recovered_blocks
        self._c_deaths.inc()
        self._c_recovered.inc(recovered_blocks)
        self._tel.event(
            EV_DISK_DEATH,
            disk=disk,
            trigger=trigger,
            recovered_blocks=recovered_blocks,
            ops_served=self._ops[disk],
        )

    # -- accounting hooks -------------------------------------------------

    def count_transient(self) -> None:
        self.stats.transient_failures += 1
        self._c_transient.inc()

    def count_retry(self, disk: int, backoff_ms: float) -> None:
        self.stats.retries += 1
        self.stats.backoff_ms_total += backoff_ms
        self._c_retries.inc()
        self._h_backoff.observe(backoff_ms)
        self._penalty_ms[disk] += backoff_ms

    def count_corrupt(self) -> None:
        self.stats.corrupt_injected += 1
        self._c_corrupt.inc()

    def count_detected(self) -> None:
        self.stats.checksum_detected += 1
        self._c_detected.inc()

    def count_undetected(self) -> None:
        self.stats.undetected_corruptions += 1
        self._c_undetected.inc()

    def count_split_ios(self, extra_rounds: int) -> None:
        self.stats.degraded_split_ios += extra_rounds
        self._c_split.inc(extra_rounds)

    def count_breaker_trip(self) -> None:
        self.stats.breaker_trips += 1
        self._c_breaker.inc()

    def count_redirect(self) -> None:
        self.stats.redirected_allocations += 1
        self._c_redirect.inc()

    # -- queueing-layer hooks (ServiceNetwork) ----------------------------

    def latency_factor(self, disk: int) -> float:
        """Straggler multiplier for *disk* (1.0 when unlisted)."""
        return float(self.plan.latency_factors.get(disk, 1.0))

    def stall_release(self, disk: int, candidate_ms: float) -> float:
        """Earliest service start at or after *candidate_ms* on *disk*.

        A start landing inside a stall window slides to the window's
        end (repeatedly, for chained windows); the slid time is counted
        as ``faults.stall_ms``.
        """
        windows = self._stalls_by_disk.get(disk)
        if not windows:
            return 0.0
        t = candidate_ms
        moved = True
        while moved:
            moved = False
            for w in windows:
                if w.start_ms <= t < w.end_ms:
                    t = w.end_ms
                    moved = True
        if t > candidate_ms:
            self.stats.stall_ms += t - candidate_ms
            self._c_stall.inc(t - candidate_ms)
        return t

    def take_penalty_ms(self, disk: int) -> float:
        """Drain retry/backoff penalties accumulated for *disk*."""
        p = self._penalty_ms[disk]
        if p:
            self._penalty_ms[disk] = 0.0
        return p
