"""Workload generators: §9.3 average-case inputs plus stress shapes."""

from .arrivals import (
    JobArrival,
    batch_arrivals,
    bursty_arrivals,
    dump_arrivals,
    load_arrivals,
    poisson_arrivals,
)
from .generators import (
    block_sorted,
    duplicate_heavy,
    geometric_length_runs,
    interleaved_runs,
    nearly_sorted,
    reverse_sorted,
    sequential_runs,
    uniform_keys,
    uniform_permutation,
    zipf_keys,
)
from .partitions import random_partition_job, random_partition_runs

__all__ = [
    "JobArrival",
    "batch_arrivals",
    "bursty_arrivals",
    "dump_arrivals",
    "load_arrivals",
    "poisson_arrivals",
    "block_sorted",
    "geometric_length_runs",
    "zipf_keys",
    "duplicate_heavy",
    "interleaved_runs",
    "nearly_sorted",
    "reverse_sorted",
    "sequential_runs",
    "uniform_keys",
    "uniform_permutation",
    "random_partition_job",
    "random_partition_runs",
]
