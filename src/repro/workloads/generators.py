"""Input-data generators for sorting experiments and stress tests."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..rng import RngLike, ensure_rng


def uniform_permutation(n: int, rng: RngLike = None) -> np.ndarray:
    """A uniformly random permutation of ``0..n-1`` (distinct keys)."""
    if n < 0:
        raise ConfigError(f"n must be >= 0, got {n}")
    return ensure_rng(rng).permutation(n).astype(np.int64)


def uniform_keys(n: int, lo: int, hi: int, rng: RngLike = None) -> np.ndarray:
    """``n`` i.i.d. uniform keys in ``[lo, hi)`` (duplicates likely)."""
    if hi <= lo:
        raise ConfigError(f"empty key range [{lo}, {hi})")
    return ensure_rng(rng).integers(lo, hi, size=n, dtype=np.int64)


def duplicate_heavy(n: int, n_distinct: int, rng: RngLike = None) -> np.ndarray:
    """Keys drawn from only *n_distinct* values — a tie-handling stress."""
    if n_distinct < 1:
        raise ConfigError(f"need at least one distinct value, got {n_distinct}")
    return ensure_rng(rng).integers(0, n_distinct, size=n, dtype=np.int64)


def nearly_sorted(n: int, swap_fraction: float, rng: RngLike = None) -> np.ndarray:
    """``0..n-1`` with up to ``swap_fraction·n`` random adjacent swaps.

    Models logs and time-series data that arrive almost in order —
    replacement selection's best case.

    The swap positions are drawn i.i.d., then de-duplicated and thinned
    so no two kept swaps overlap: every kept swap contributes exactly
    one inversion instead of possibly undoing an earlier one (the old
    sequential pass let duplicate draws cancel, so the realized disorder
    silently undershot ``swap_fraction``).  The kept count — and hence
    the inversion count — is therefore at most ``swap_fraction·n``,
    approaching it for small fractions.  Output is deterministic for a
    fixed seed, and the swaps apply as one vectorized pass.
    """
    if not 0.0 <= swap_fraction <= 1.0:
        raise ConfigError(f"swap_fraction must be in [0, 1], got {swap_fraction}")
    gen = ensure_rng(rng)
    keys = np.arange(n, dtype=np.int64)
    n_swaps = int(n * swap_fraction)
    if n >= 2 and n_swaps:
        idx = np.unique(gen.integers(0, n - 1, size=n_swaps))
        # Thin overlapping neighbours: swapping (i, i+1) and (i+1, i+2)
        # in one vectorized assignment would race on element i+1.
        keep = np.ones(idx.size, dtype=bool)
        keep[1:] = np.diff(idx) > 1
        idx = idx[keep]
        keys[idx], keys[idx + 1] = keys[idx + 1], keys[idx]
    return keys


def reverse_sorted(n: int) -> np.ndarray:
    """``n-1..0`` — replacement selection's worst case."""
    return np.arange(n, dtype=np.int64)[::-1].copy()


def interleaved_runs(n_runs: int, records_per_run: int) -> list[np.ndarray]:
    """Runs that deplete in perfect lockstep: run ``j`` holds keys
    ``j, j+R, j+2R, ...``.

    Every run's blocks empty at the same rate, so all leading blocks
    advance together — the §3 adversary when combined with the
    WORST_CASE layout (all runs on one disk).
    """
    if n_runs < 1 or records_per_run < 1:
        raise ConfigError("need at least one run of at least one record")
    n = n_runs * records_per_run
    return [np.arange(j, n, n_runs, dtype=np.int64) for j in range(n_runs)]


def zipf_keys(n: int, alpha: float = 1.5, n_distinct: int = 10_000,
              rng: RngLike = None) -> np.ndarray:
    """Zipf-distributed keys — heavy head, long tail of rare values.

    Models real sort columns (URLs, user ids): a few keys repeat
    enormously.  Stresses the merger's duplicate handling and the
    writer's partial-consumption path.

    Keys lie in ``1..n_distinct`` and their expected frequencies are
    monotone decreasing in the key — the true Zipf law truncated to the
    support.  Out-of-range draws are redrawn (rejection sampling)
    rather than clamped: clamping ``np.minimum(raw, n_distinct)`` piled
    the entire tail mass onto key ``n_distinct``, turning the nominally
    rarest key into one of the most common and inverting the tail.
    """
    if alpha <= 1.0:
        raise ConfigError(f"zipf alpha must be > 1, got {alpha}")
    if n_distinct < 1:
        raise ConfigError(f"need at least one distinct key, got {n_distinct}")
    gen = ensure_rng(rng)
    raw = gen.zipf(alpha, size=n).astype(np.int64)
    bad = raw > n_distinct
    while bad.any():
        raw[bad] = gen.zipf(alpha, size=int(bad.sum())).astype(np.int64)
        bad = raw > n_distinct
    return raw


def block_sorted(n: int, chunk: int, rng: RngLike = None) -> np.ndarray:
    """Globally shuffled but locally sorted chunks.

    Models concatenations of pre-sorted partitions (map-side outputs):
    each *chunk* is ascending, chunk order is random.
    """
    if chunk < 1:
        raise ConfigError(f"chunk must be >= 1, got {chunk}")
    gen = ensure_rng(rng)
    keys = np.arange(n, dtype=np.int64)
    starts = np.arange(0, n, chunk)
    gen.shuffle(starts)
    out = np.concatenate([keys[s : s + chunk] for s in starts]) if n else keys
    return out


def geometric_length_runs(
    n_runs: int, mean_length: int, rng: RngLike = None, min_length: int = 1
) -> list[np.ndarray]:
    """Sorted runs with geometrically distributed lengths.

    Real merge inputs (e.g. from replacement selection on skewed data)
    are far from equal-length; this exercises chain-length diversity in
    the dependent occupancy view.

    Lengths are ``max(min_length, Geometric(1/mean_length))``, so the
    *realized* mean sits above ``mean_length`` whenever the clamp can
    bind — noticeably so for small means (at ``mean_length = 2`` about
    half the raw draws equal 1).  ``mean_length`` is the mean of the
    raw geometric draw, not a promise about the clamped lengths.  A
    ``min_length`` exceeding ``mean_length`` would make the clamp
    dominate the draw entirely and is rejected.
    """
    if n_runs < 1 or mean_length < 1:
        raise ConfigError("need at least one run of at least one record")
    if min_length < 1:
        raise ConfigError(f"min_length must be >= 1, got {min_length}")
    if min_length > mean_length:
        raise ConfigError(
            f"min_length {min_length} > mean_length {mean_length}: the "
            "clamp would dominate the geometric draw"
        )
    gen = ensure_rng(rng)
    lengths = np.maximum(
        min_length, gen.geometric(1.0 / mean_length, size=n_runs)
    )
    total = int(lengths.sum())
    perm = gen.permutation(total)
    runs = []
    pos = 0
    for l in lengths:
        runs.append(np.sort(perm[pos : pos + int(l)]))
        pos += int(l)
    return runs


def sequential_runs(n_runs: int, records_per_run: int) -> list[np.ndarray]:
    """Runs with disjoint consecutive ranges: run ``j`` holds
    ``[j·L, (j+1)·L)``.

    The merge consumes one run at a time — maximal chain lengths in the
    dependent occupancy view, and the easiest case for prefetching.
    """
    if n_runs < 1 or records_per_run < 1:
        raise ConfigError("need at least one run of at least one record")
    return [
        np.arange(j * records_per_run, (j + 1) * records_per_run, dtype=np.int64)
        for j in range(n_runs)
    ]
