"""Job-arrival generators for the multi-tenant sort service.

A service run is driven by a declarative *arrival script*: a list of
:class:`JobArrival` rows saying which tenant submits how many records at
what simulated time.  This module generates such scripts — seeded
Poisson streams, bursty on/off streams, and simultaneous batches — and
round-trips them through JSON trace files, so ``repro serve``, the
chaos harness, and the bench contention section all replay identical
workloads from one seed.

Every generator is deterministic for a fixed seed, returns arrivals
sorted by time (ties broken by job index), and sizes drawn uniformly
from ``[min_records, max_records]``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from ..errors import ConfigError
from ..rng import RngLike, ensure_rng

__all__ = [
    "JobArrival",
    "poisson_arrivals",
    "bursty_arrivals",
    "batch_arrivals",
    "load_arrivals",
    "dump_arrivals",
]


@dataclass(frozen=True, slots=True)
class JobArrival:
    """One job submission in an arrival script.

    Attributes
    ----------
    job_id:
        Unique name (``"t0-j3"``); doubles as the trace/telemetry tag.
    tenant:
        Submitting tenant; must match a service partition.
    arrival_ms:
        Simulated submission time on the shared farm's clock.
    n_records:
        Input size of the sort job.
    seed:
        Per-job seed driving both the input data and the job's layout
        randomness — what makes service-vs-solo bit-identity checkable.
    weight:
        The tenant's fair-share weight (copied onto every arrival so a
        trace file is self-contained).
    """

    job_id: str
    tenant: str
    arrival_ms: float
    n_records: int
    seed: int
    weight: float = 1.0


def _check_common(
    n_jobs: int, n_tenants: int, min_records: int, max_records: int
) -> None:
    if n_jobs < 1:
        raise ConfigError(f"need at least one job, got {n_jobs}")
    if n_tenants < 1:
        raise ConfigError(f"need at least one tenant, got {n_tenants}")
    if min_records < 1 or max_records < min_records:
        raise ConfigError(
            f"bad size range [{min_records}, {max_records}]"
        )


def _finish(rows: list[JobArrival]) -> list[JobArrival]:
    rows.sort(key=lambda a: (a.arrival_ms, a.job_id))
    return rows


def _tenant_weights(
    n_tenants: int, weights: tuple[float, ...] | None
) -> tuple[float, ...]:
    if weights is None:
        return (1.0,) * n_tenants
    if len(weights) != n_tenants:
        raise ConfigError(
            f"{len(weights)} weights for {n_tenants} tenants"
        )
    if any(not w > 0.0 for w in weights):
        raise ConfigError(f"weights must be positive, got {weights}")
    return tuple(float(w) for w in weights)


def poisson_arrivals(
    n_jobs: int,
    rate_per_s: float,
    n_tenants: int = 2,
    min_records: int = 500,
    max_records: int = 2_000,
    weights: tuple[float, ...] | None = None,
    rng: RngLike = None,
    start_ms: float = 0.0,
) -> list[JobArrival]:
    """Seeded Poisson stream: exponential inter-arrivals at *rate_per_s*.

    Tenants are assigned round-robin so every tenant participates even
    in short scripts; sizes are uniform in ``[min_records,
    max_records]``.
    """
    _check_common(n_jobs, n_tenants, min_records, max_records)
    if not rate_per_s > 0.0:
        raise ConfigError(f"arrival rate must be positive, got {rate_per_s}")
    w = _tenant_weights(n_tenants, weights)
    gen = ensure_rng(rng)
    mean_gap_ms = 1000.0 / rate_per_s
    t = float(start_ms)
    rows: list[JobArrival] = []
    for j in range(n_jobs):
        t += float(gen.exponential(mean_gap_ms))
        tenant = j % n_tenants
        rows.append(
            JobArrival(
                job_id=f"t{tenant}-j{j}",
                tenant=f"t{tenant}",
                arrival_ms=t,
                n_records=int(gen.integers(min_records, max_records + 1)),
                seed=int(gen.integers(0, 2**31 - 1)),
                weight=w[tenant],
            )
        )
    return _finish(rows)


def bursty_arrivals(
    n_jobs: int,
    burst_size: int,
    burst_gap_ms: float,
    n_tenants: int = 2,
    min_records: int = 500,
    max_records: int = 2_000,
    within_gap_ms: float = 1.0,
    weights: tuple[float, ...] | None = None,
    rng: RngLike = None,
    start_ms: float = 0.0,
) -> list[JobArrival]:
    """On/off bursts: *burst_size* jobs land ``within_gap_ms`` apart,
    then the stream idles *burst_gap_ms* before the next burst — the
    backlogged-then-quiet shape that separates the fairness policies.
    """
    _check_common(n_jobs, n_tenants, min_records, max_records)
    if burst_size < 1:
        raise ConfigError(f"burst size must be >= 1, got {burst_size}")
    if burst_gap_ms < 0.0 or within_gap_ms < 0.0:
        raise ConfigError("burst gaps must be non-negative")
    w = _tenant_weights(n_tenants, weights)
    gen = ensure_rng(rng)
    rows: list[JobArrival] = []
    t = float(start_ms)
    for j in range(n_jobs):
        if j and j % burst_size == 0:
            t += burst_gap_ms
        elif j:
            t += float(gen.uniform(0.0, within_gap_ms))
        tenant = j % n_tenants
        rows.append(
            JobArrival(
                job_id=f"t{tenant}-j{j}",
                tenant=f"t{tenant}",
                arrival_ms=t,
                n_records=int(gen.integers(min_records, max_records + 1)),
                seed=int(gen.integers(0, 2**31 - 1)),
                weight=w[tenant],
            )
        )
    return _finish(rows)


def batch_arrivals(
    n_jobs: int,
    n_tenants: int = 2,
    min_records: int = 500,
    max_records: int = 2_000,
    weights: tuple[float, ...] | None = None,
    rng: RngLike = None,
) -> list[JobArrival]:
    """All jobs arrive at ``t = 0`` — the fully-backlogged contention
    case the acceptance bounds (makespan vs. sum-of-isolated, fair
    share) are stated against."""
    _check_common(n_jobs, n_tenants, min_records, max_records)
    w = _tenant_weights(n_tenants, weights)
    gen = ensure_rng(rng)
    rows = [
        JobArrival(
            job_id=f"t{j % n_tenants}-j{j}",
            tenant=f"t{j % n_tenants}",
            arrival_ms=0.0,
            n_records=int(gen.integers(min_records, max_records + 1)),
            seed=int(gen.integers(0, 2**31 - 1)),
            weight=w[j % n_tenants],
        )
        for j in range(n_jobs)
    ]
    return _finish(rows)


def dump_arrivals(arrivals: list[JobArrival], path: str) -> None:
    """Write an arrival script as a JSON trace file."""
    with open(path, "w") as fh:
        json.dump([asdict(a) for a in arrivals], fh, indent=2)
        fh.write("\n")


def load_arrivals(path: str) -> list[JobArrival]:
    """Load a JSON trace file written by :func:`dump_arrivals` (or by
    hand); validates fields and returns time-sorted arrivals."""
    with open(path) as fh:
        raw = json.load(fh)
    if not isinstance(raw, list) or not raw:
        raise ConfigError(f"{path}: arrival trace must be a non-empty list")
    rows: list[JobArrival] = []
    seen: set[str] = set()
    for i, item in enumerate(raw):
        try:
            a = JobArrival(
                job_id=str(item["job_id"]),
                tenant=str(item["tenant"]),
                arrival_ms=float(item["arrival_ms"]),
                n_records=int(item["n_records"]),
                seed=int(item["seed"]),
                weight=float(item.get("weight", 1.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"{path}: bad arrival row {i}: {exc}") from exc
        if a.n_records < 1:
            raise ConfigError(f"{path}: row {i} has n_records={a.n_records}")
        if a.arrival_ms < 0.0:
            raise ConfigError(f"{path}: row {i} arrives at {a.arrival_ms}ms")
        if not a.weight > 0.0:
            raise ConfigError(f"{path}: row {i} has weight={a.weight}")
        if a.job_id in seen:
            raise ConfigError(f"{path}: duplicate job_id {a.job_id!r}")
        seen.add(a.job_id)
        rows.append(a)
    return _finish(rows)
