"""Average-case merge inputs (paper §9.3).

"There is an obvious one-to-one correspondence between the set of all
possible input runs to the merge and the set of partitions of the set
``I = {1, 2, ..., LkD}``, each partition splitting ``I`` into ``kD``
disjoint subsets of size ``L``.  We generate average-case inputs to the
merge by generating partitions of the set ``I``, with each partition
being equally likely."  This module is exactly that generator, plus a
helper that assembles the corresponding :class:`MergeJob` directly.
"""

from __future__ import annotations

import numpy as np

from ..core.job import MergeJob
from ..core.layout import LayoutStrategy
from ..errors import ConfigError
from ..rng import RngLike, ensure_rng


def random_partition_runs(
    n_runs: int, run_length: int, rng: RngLike = None
) -> list[np.ndarray]:
    """Uniformly random partition of ``{0..n_runs*run_length-1}`` into
    *n_runs* sorted runs of *run_length* records each."""
    if n_runs < 1 or run_length < 1:
        raise ConfigError("need at least one run of at least one record")
    gen = ensure_rng(rng)
    perm = gen.permutation(n_runs * run_length)
    runs = [
        np.sort(perm[i * run_length : (i + 1) * run_length])
        for i in range(n_runs)
    ]
    return runs


def random_partition_job(
    k: int,
    n_disks: int,
    blocks_per_run: int,
    block_size: int,
    rng: RngLike = None,
    strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
) -> MergeJob:
    """A §9.3 average-case merge job with ``R = kD`` runs.

    Each run has ``blocks_per_run`` blocks of ``block_size`` records
    (the paper's ``L = blocks_per_run * block_size``); starting disks
    follow *strategy*.
    """
    gen = ensure_rng(rng)
    runs = random_partition_runs(k * n_disks, blocks_per_run * block_size, gen)
    return MergeJob.from_key_runs(
        runs, block_size, n_disks, strategy=strategy, rng=gen
    )
