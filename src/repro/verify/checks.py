"""Verification utilities: sortedness, permutation, on-disk format checks."""

from __future__ import annotations

import numpy as np

from ..disks.block import NO_KEY
from ..disks.files import StripedRun
from ..disks.system import ParallelDiskSystem
from ..errors import DataError


def is_sorted(keys: np.ndarray) -> bool:
    """True if *keys* is non-decreasing."""
    keys = np.asarray(keys)
    return bool(np.all(keys[:-1] <= keys[1:]))


def is_permutation_of(a: np.ndarray, b: np.ndarray) -> bool:
    """True if *a* and *b* hold the same multiset of keys."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.size != b.size:
        return False
    return bool(np.array_equal(np.sort(a), np.sort(b)))


def assert_sorted_permutation(output: np.ndarray, original: np.ndarray) -> None:
    """Raise :class:`DataError` unless *output* is sorted(*original*)."""
    if not is_sorted(output):
        raise DataError("output is not sorted")
    if not is_permutation_of(output, original):
        raise DataError("output is not a permutation of the input")


def check_striped_run(system: ParallelDiskSystem, run: StripedRun) -> None:
    """Validate a run's complete on-disk invariants (§3 and §4).

    Checks, raising :class:`DataError` on the first violation:

    * block ``i`` lives on disk ``(start_disk + i) mod D``;
    * keys are sorted within and across blocks;
    * the initial block implants ``k_{r,0..D-1}``, every later block
      implants ``k_{r,i+D}`` (``NO_KEY`` past the end);
    * the recorded first/last key metadata matches the block contents.

    On a degraded system (a disk died mid-sort), the cyclic-placement
    rule is waived for stripe positions whose disk is dead — those
    blocks were legally relocated onto survivors — while every other
    invariant still holds.
    """
    D = system.n_disks
    blocks = []
    for i, addr in enumerate(run.addresses):
        expect_disk = (run.start_disk + i) % D
        if addr.disk != expect_disk and expect_disk not in system.dead_disks:
            raise DataError(
                f"block {i} on disk {addr.disk}, cyclic rule requires {expect_disk}"
            )
        blocks.append(system.peek(addr))

    prev_last = None
    for i, blk in enumerate(blocks):
        if not is_sorted(blk.keys):
            raise DataError(f"block {i} keys are not sorted")
        if prev_last is not None and blk.first_key < prev_last:
            raise DataError(f"block {i} overlaps its predecessor")
        prev_last = blk.last_key
        if blk.first_key != int(run.first_keys[i]) or blk.last_key != int(
            run.last_keys[i]
        ):
            raise DataError(f"block {i} metadata does not match its contents")

    first_keys = [b.first_key for b in blocks]

    def key_of(j: int) -> float:
        return int(first_keys[j]) if j < len(blocks) else NO_KEY

    expect0 = tuple(key_of(j) for j in range(D))
    if blocks[0].forecast != expect0:
        raise DataError(
            f"initial block forecast {blocks[0].forecast} != expected {expect0}"
        )
    for i in range(1, len(blocks)):
        expect = (key_of(i + D),)
        if blocks[i].forecast != expect:
            raise DataError(
                f"block {i} forecast {blocks[i].forecast} != expected {expect}"
            )

    total = sum(len(b) for b in blocks)
    if total != run.n_records:
        raise DataError(
            f"run holds {total} records, metadata claims {run.n_records}"
        )


def audit_checksums(system: ParallelDiskSystem) -> dict:
    """Verify every stored block's seal without charging I/O.

    The read-only half of :func:`repro.faults.degraded.scrub_and_repair`
    — a verification aid for tests and the chaos harness.  Returns
    ``{"checked": n, "sealed": n, "stale": [(disk, slot), ...]}``;
    ``stale`` lists blocks whose bytes no longer match their checksum
    (torn writes that nothing has re-read yet).  Unsealed blocks verify
    trivially and are excluded from ``sealed``.
    """
    checked = sealed = 0
    stale: list[tuple[int, int]] = []
    for d, disk in enumerate(system.disks):
        if d in system.dead_disks:
            continue
        for slot, blk in sorted(disk._slots.items()):
            checked += 1
            if blk.checksum is not None:
                sealed += 1
                if not blk.verify():
                    stale.append((d, slot))
    return {"checked": checked, "sealed": sealed, "stale": stale}


def check_cluster_shards(result) -> None:
    """Validate a :class:`~repro.cluster.sort.ClusterSortResult`.

    Raises :class:`DataError` on the first violation of the cluster
    contract:

    * every node's shard is a valid on-disk striped run on that node's
      own disk system (placement, forecasts, metadata — the full
      :func:`check_striped_run`);
    * shard key ranges respect the splitters: node ``j``'s keys lie in
      ``(s_{j-1}, s_j]`` — every record landed on its owner;
    * shards are globally ordered across node boundaries, so the
      node-order concatenation is sorted;
    * shard sizes sum to the input size (no record lost or duplicated
      by the exchange, even across a node rebuild).
    """
    splitters = np.asarray(result.splitters, dtype=np.int64)
    total = 0
    prev_last = None
    for node in result.nodes:
        if node.shard is None:
            continue
        check_striped_run(node.system, node.shard)
        keys = node.peek_shard()
        total += keys.size
        j = node.index
        if j > 0 and splitters.size and keys[0] <= int(splitters[j - 1]):
            raise DataError(
                f"node {j} holds key {int(keys[0])} <= splitter "
                f"{int(splitters[j - 1])} owned by an earlier node"
            )
        if j < splitters.size and keys[-1] > int(splitters[j]):
            raise DataError(
                f"node {j} holds key {int(keys[-1])} > its splitter "
                f"{int(splitters[j])}"
            )
        if prev_last is not None and keys[0] < prev_last:
            raise DataError(
                f"node {j}'s shard overlaps its predecessor "
                f"({int(keys[0])} < {int(prev_last)})"
            )
        prev_last = keys[-1]
    if total != result.n_records:
        raise DataError(
            f"shards hold {total} records, input had {result.n_records}"
        )


def check_superblock_run(system: ParallelDiskSystem, run) -> None:
    """Validate a DSM superblock run's on-disk invariants.

    Checks that every stripe is slot-synchronized across disks starting
    at disk 0 (the "logical single disk" layout), that keys are sorted
    within and across superblocks, and that the record count matches.
    On a degraded system, stripe positions whose expected disk is dead
    are exempt from the placement rule (their blocks were relocated).
    """
    total = 0
    prev_last = None
    for s, stripe in enumerate(run.stripes):
        disks = [a.disk for a in stripe]
        expect = list(range(len(stripe)))
        mismatch = [
            (got, want)
            for got, want in zip(disks, expect)
            if got != want and want not in system.dead_disks
        ]
        if mismatch:
            raise DataError(
                f"superblock {s} spans disks {disks}, expected 0..{len(stripe)-1}"
            )
        for addr in stripe:
            blk = system.peek(addr)
            if not is_sorted(blk.keys):
                raise DataError(f"superblock {s} holds an unsorted block")
            if prev_last is not None and blk.first_key < prev_last:
                raise DataError(f"superblock {s} overlaps its predecessor")
            prev_last = blk.last_key
            total += len(blk)
    if total != run.n_records:
        raise DataError(
            f"run holds {total} records, metadata claims {run.n_records}"
        )
