"""Output and on-disk-format verification helpers."""

from .checks import (
    assert_sorted_permutation,
    check_cluster_shards,
    check_striped_run,
    check_superblock_run,
    is_permutation_of,
    is_sorted,
)

__all__ = [
    "assert_sorted_permutation",
    "check_cluster_shards",
    "check_striped_run",
    "check_superblock_run",
    "is_permutation_of",
    "is_sorted",
]
