"""Exact occupancy distributions for small instances.

Monte-Carlo estimators (:mod:`repro.occupancy.classical`,
:mod:`repro.occupancy.dependent`) drive the paper-scale tables; this
module computes *exact* distributions for small parameters so the
estimators and the analytic bounds can be tested against ground truth:

* classical: ``P(max <= m)`` via the truncated exponential generating
  function — ``P = N! / D^N · [x^N] (sum_{i<=m} x^i/i!)^D`` — evaluated
  in exact rational arithmetic;
* dependent: brute-force enumeration of all ``D^C`` chain placements.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from math import factorial
from typing import Sequence

import numpy as np

from ..errors import ConfigError

#: Practical guardrails: beyond these sizes the exact computations are
#: deliberately refused (the Monte-Carlo path is the right tool there).
MAX_EXACT_BALLS = 120
MAX_EXACT_PLACEMENTS = 2_000_000


def _poly_pow_truncated(
    base: list[Fraction], power: int, max_degree: int
) -> list[Fraction]:
    """``base(x) ** power`` keeping only degrees ``<= max_degree``."""
    result = [Fraction(1)]
    acc = list(base)
    p = power
    while p:
        if p & 1:
            result = _poly_mul_truncated(result, acc, max_degree)
        p >>= 1
        if p:
            acc = _poly_mul_truncated(acc, acc, max_degree)
    return result


def _poly_mul_truncated(
    a: list[Fraction], b: list[Fraction], max_degree: int
) -> list[Fraction]:
    out = [Fraction(0)] * min(len(a) + len(b) - 1, max_degree + 1)
    for i, ai in enumerate(a):
        if ai == 0 or i > max_degree:
            continue
        hi = min(len(b), max_degree + 1 - i)
        for j in range(hi):
            bj = b[j]
            if bj:
                out[i + j] += ai * bj
    return out


@lru_cache(maxsize=256)
def classical_max_cdf(n_balls: int, n_bins: int, m: int) -> Fraction:
    """Exact ``P(max occupancy <= m)`` for the classical problem."""
    if n_balls < 0 or n_bins < 1:
        raise ConfigError("need n_balls >= 0 and n_bins >= 1")
    if n_balls > MAX_EXACT_BALLS:
        raise ConfigError(
            f"exact computation limited to {MAX_EXACT_BALLS} balls, got {n_balls}"
        )
    if m < 0:
        return Fraction(0)
    if m >= n_balls:
        return Fraction(1)
    # EGF of one bin holding at most m balls, truncated at degree n_balls.
    base = [Fraction(1, factorial(i)) for i in range(min(m, n_balls) + 1)]
    poly = _poly_pow_truncated(base, n_bins, n_balls)
    coeff = poly[n_balls] if n_balls < len(poly) else Fraction(0)
    return coeff * factorial(n_balls) / Fraction(n_bins) ** n_balls


def classical_max_pmf(n_balls: int, n_bins: int) -> dict[int, Fraction]:
    """Exact distribution ``P(max occupancy = m)``."""
    pmf: dict[int, Fraction] = {}
    prev = Fraction(0)
    for m in range(n_balls + 1):
        cur = classical_max_cdf(n_balls, n_bins, m)
        if cur != prev:
            pmf[m] = cur - prev
        prev = cur
    return pmf


def exact_classical_expected_max(n_balls: int, n_bins: int) -> Fraction:
    """Exact ``C(N_b, D)`` via ``E[max] = sum_m P(max > m)``."""
    total = Fraction(0)
    for m in range(n_balls):
        total += 1 - classical_max_cdf(n_balls, n_bins, m)
    return total


def dependent_max_pmf(
    chain_lengths: Sequence[int], n_bins: int
) -> dict[int, Fraction]:
    """Exact max-occupancy distribution by enumerating all placements.

    Each of the ``C`` chains independently starts in one of ``D`` bins,
    so there are ``D^C`` equiprobable placements; refuse instances with
    more than :data:`MAX_EXACT_PLACEMENTS`.
    """
    lengths = [int(l) for l in chain_lengths]
    if any(l < 1 for l in lengths):
        raise ConfigError("chain lengths must be positive")
    C = len(lengths)
    n_placements = n_bins**C
    if n_placements > MAX_EXACT_PLACEMENTS:
        raise ConfigError(
            f"{n_placements} placements exceed the exact-enumeration limit"
        )
    # Per-chain occupancy footprint for each start bin, as a vector.
    footprints = []
    for l in lengths:
        per_start = np.zeros((n_bins, n_bins), dtype=np.int64)
        for s in range(n_bins):
            for i in range(l):
                per_start[s, (s + i) % n_bins] += 1
        footprints.append(per_start)

    counts: dict[int, int] = {}
    occ = np.zeros(n_bins, dtype=np.int64)

    def recurse(idx: int) -> None:
        if idx == C:
            m = int(occ.max())
            counts[m] = counts.get(m, 0) + 1
            return
        fp = footprints[idx]
        for s in range(n_bins):
            occ[:] += fp[s]
            recurse(idx + 1)
            occ[:] -= fp[s]

    recurse(0)
    denom = Fraction(n_placements)
    return {m: Fraction(c) / denom for m, c in sorted(counts.items())}


def exact_dependent_expected_max(
    chain_lengths: Sequence[int], n_bins: int
) -> Fraction:
    """Exact ``E[X_max]`` for a small dependent instance."""
    pmf = dependent_max_pmf(chain_lengths, n_bins)
    return sum((Fraction(m) * p for m, p in pmf.items()), Fraction(0))
