"""Maximum occupancy problems (paper §7): classical, dependent, exact,
and the Theorem 2 analytic bounds."""

from .bounds import (
    classical_expected_max_lower_bound,
    gf_expected_max_bound,
    max_tail_probability_bound,
    tail_probability_bound,
    theorem2_case1_bound,
    theorem2_case2_bound,
)
from .classical import (
    DEFAULT_TRIALS,
    OccupancyEstimate,
    expected_max_occupancy,
    max_occupancy_samples,
    overhead_v,
)
from .dependent import (
    FIGURE1_CHAIN_LENGTHS,
    FIGURE1_N_BINS,
    canonicalize_chains,
    dependent_max_occupancy_samples,
    dependent_occupancy_counts,
    expected_dependent_max_occupancy,
    figure1_classical_instance,
    figure1_dependent_instance,
)
from .pgf import (
    classical_one_bin_pmf,
    expected_max_upper_bound,
    max_occupancy_tail_bound,
    one_bin_pmf,
    one_bin_tail,
)
from .exact import (
    classical_max_cdf,
    classical_max_pmf,
    dependent_max_pmf,
    exact_classical_expected_max,
    exact_dependent_expected_max,
)

__all__ = [
    "DEFAULT_TRIALS",
    "OccupancyEstimate",
    "expected_max_occupancy",
    "max_occupancy_samples",
    "overhead_v",
    "FIGURE1_CHAIN_LENGTHS",
    "FIGURE1_N_BINS",
    "canonicalize_chains",
    "dependent_max_occupancy_samples",
    "dependent_occupancy_counts",
    "expected_dependent_max_occupancy",
    "figure1_classical_instance",
    "figure1_dependent_instance",
    "classical_max_cdf",
    "classical_max_pmf",
    "dependent_max_pmf",
    "exact_classical_expected_max",
    "exact_dependent_expected_max",
    "classical_expected_max_lower_bound",
    "gf_expected_max_bound",
    "max_tail_probability_bound",
    "tail_probability_bound",
    "theorem2_case1_bound",
    "theorem2_case2_bound",
    "classical_one_bin_pmf",
    "expected_max_upper_bound",
    "max_occupancy_tail_bound",
    "one_bin_pmf",
    "one_bin_tail",
]
