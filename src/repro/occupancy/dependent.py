"""The dependent maximum occupancy problem (paper §7.1, Figure 1).

Instead of independent balls, *chains* of balls are thrown: a chain of
length ``l`` whose leading ball falls in bin ``s`` deposits its ``i``-th
ball in bin ``(s + i) mod D``.  This models a merge phase: the chain is
the set of contiguous blocks of one run needed by the phase, striped
cyclically from the run's random starting disk (Lemma 7 / Definition 10).

Lemma 9 lets us canonicalize: a chain of length ``aD + b`` deposits ``a``
balls in *every* bin plus one chain of length ``b < D``, with the same
occupancy distribution.  The sampler below exploits that, so arbitrarily
long chains cost ``O(D)`` per trial.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError
from ..rng import RngLike, ensure_rng
from .classical import DEFAULT_TRIALS, OccupancyEstimate


def canonicalize_chains(
    chain_lengths: Sequence[int], n_bins: int
) -> tuple[int, np.ndarray]:
    """Apply Lemma 9: reduce chains modulo ``D``.

    Returns
    -------
    (base, residual_lengths):
        ``base`` is the occupancy every bin receives deterministically
        (one per full cycle of every chain); ``residual_lengths`` are the
        remaining chain lengths, each in ``[1, D-1]``.
    """
    lengths = np.asarray(chain_lengths, dtype=np.int64)
    if lengths.size and lengths.min() < 1:
        raise ConfigError("chain lengths must be positive")
    if n_bins < 1:
        raise ConfigError(f"need at least one bin, got {n_bins}")
    base = int((lengths // n_bins).sum())
    residual = lengths % n_bins
    return base, residual[residual > 0]


def dependent_occupancy_counts(
    chain_lengths: Sequence[int],
    starts: Sequence[int],
    n_bins: int,
) -> np.ndarray:
    """Deterministic bin occupancies for given chain starting bins.

    Used for exact reproduction of specific instances (e.g. Figure 1)
    and as the reference implementation the vectorized sampler is
    tested against.
    """
    lengths = np.asarray(chain_lengths, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    if lengths.shape != starts.shape:
        raise ConfigError("chain_lengths and starts must have equal length")
    occ = np.zeros(n_bins, dtype=np.int64)
    for l, s in zip(lengths, starts):
        for i in range(int(l)):
            occ[(s + i) % n_bins] += 1
    return occ


def dependent_max_occupancy_samples(
    chain_lengths: Sequence[int],
    n_bins: int,
    n_trials: int = DEFAULT_TRIALS,
    rng: RngLike = None,
    _chunk_cells: int = 8_000_000,
) -> np.ndarray:
    """Sample the maximum occupancy of randomly thrown chains.

    Every trial throws each chain's leading ball into a uniform bin
    (independently across chains and trials) and records the fullest
    bin.  Implementation: Lemma 9 canonicalization, then a wrapped
    difference-array accumulation so each trial costs
    ``O(C + D)`` instead of ``O(total balls)``.
    """
    if n_trials < 1:
        raise ConfigError(f"need at least one trial, got {n_trials}")
    base, residual = canonicalize_chains(chain_lengths, n_bins)
    if residual.size == 0:
        return np.full(n_trials, base, dtype=np.int64)
    gen = ensure_rng(rng)

    out = np.empty(n_trials, dtype=np.int64)
    trials_per_chunk = max(1, _chunk_cells // (n_bins + 1))
    done = 0
    n_chains = residual.size
    while done < n_trials:
        t = min(trials_per_chunk, n_trials - done)
        starts = gen.integers(0, n_bins, size=(t, n_chains))
        ends = starts + residual  # residual < n_bins, so ends < 2*n_bins
        diff = np.zeros((t, n_bins + 1), dtype=np.int64)
        rows = np.repeat(np.arange(t), n_chains)
        np.add.at(diff, (rows, starts.ravel()), 1)
        wrapped = ends > n_bins
        # Unwrapped (or exactly-to-the-edge) chains: subtract at `end`.
        np.add.at(diff, (rows, np.minimum(ends, n_bins).ravel()), -1)
        # Wrapped chains additionally cover bins [0, end - n_bins).
        if wrapped.any():
            wrows = rows[wrapped.ravel()]
            wends = (ends[wrapped] - n_bins).ravel()
            np.add.at(diff, (wrows, np.zeros_like(wends)), 1)
            np.add.at(diff, (wrows, wends), -1)
        occ = np.cumsum(diff[:, :n_bins], axis=1)
        out[done : done + t] = occ.max(axis=1) + base
        done += t
    return out


def expected_dependent_max_occupancy(
    chain_lengths: Sequence[int],
    n_bins: int,
    n_trials: int = DEFAULT_TRIALS,
    rng: RngLike = None,
) -> OccupancyEstimate:
    """Monte-Carlo estimate of ``E[X_max]`` for a dependent instance."""
    samples = dependent_max_occupancy_samples(chain_lengths, n_bins, n_trials, rng)
    n_balls = int(np.asarray(chain_lengths, dtype=np.int64).sum())
    return OccupancyEstimate(
        mean=float(samples.mean()),
        std_error=float(samples.std(ddof=1) / np.sqrt(n_trials)) if n_trials > 1 else 0.0,
        n_trials=n_trials,
        n_balls=n_balls,
        n_bins=n_bins,
    )


#: The Figure 1 instance: N_b = 12 balls, C = 5 chains, D = 4 bins.  The
#: figure draws chains as arrow-linked squares; lengths (4, 3, 2, 2, 1)
#: are the canonical partition consistent with the figure's totals.
FIGURE1_CHAIN_LENGTHS: tuple[int, ...] = (4, 3, 2, 2, 1)
FIGURE1_N_BINS: int = 4


def figure1_dependent_instance() -> np.ndarray:
    """A concrete placement realizing the figure's dependent panel.

    Starts are chosen so the maximum occupancy is 4, realized in the
    second bin — matching Figure 1(a).
    """
    starts = (2, 1, 0, 1, 3)
    return dependent_occupancy_counts(FIGURE1_CHAIN_LENGTHS, starts, FIGURE1_N_BINS)


def figure1_classical_instance() -> np.ndarray:
    """A placement of 12 independent balls with maximum occupancy 5 in
    the second bin — matching Figure 1(b)."""
    occ = np.array([3, 5, 2, 2], dtype=np.int64)
    assert occ.sum() == 12
    return occ
