"""Probability generating functions for one-bin occupancy (paper §7.2).

Equation (6) of the paper: for a dependent occupancy problem with
chains of lengths ``{l_j}`` (each ``<= D`` after Lemma 9), the occupancy
``X`` of one fixed bin has PGF

    G_X(z) = prod_j (1 - l_j/D + (l_j/D) z),

since a chain of length ``l`` covers any fixed bin with probability
``l/D`` and contributes at most one ball to it.  The PGF's coefficients
are the *exact* distribution of ``X`` — this module computes them by
polynomial multiplication, yielding:

* exact one-bin occupancy pmf/tails for any instance size (the number
  of chains, not balls, bounds the polynomial degree);
* a numeric expected-maximum bound
  ``E[X_max] <= T + sum_{m >= T} D P(X > m)`` (equations (3)-(5))
  minimized over the cut ``T`` — tighter than the closed-form
  generating-function bound because it uses the exact tail instead of
  the saddle-point estimate (13).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError
from .dependent import canonicalize_chains


def one_bin_pmf(chain_lengths: Sequence[int], n_bins: int) -> tuple[int, np.ndarray]:
    """Exact distribution of one bin's occupancy.

    Returns ``(base, pmf)``: the bin deterministically holds ``base``
    balls (full chain cycles, Lemma 9) plus a random count ``t`` with
    probability ``pmf[t]``.
    """
    base, residual = canonicalize_chains(chain_lengths, n_bins)
    pmf = np.array([1.0])
    for l in residual:
        p = float(l) / n_bins
        pmf = np.convolve(pmf, np.array([1.0 - p, p]))
    return base, pmf


def one_bin_tail(chain_lengths: Sequence[int], n_bins: int, m: int) -> float:
    """Exact ``P{X > m}`` for one bin's occupancy."""
    base, pmf = one_bin_pmf(chain_lengths, n_bins)
    t = m - base
    if t < 0:
        return 1.0
    if t + 1 >= pmf.size:
        return 0.0
    return float(pmf[t + 1 :].sum())


def max_occupancy_tail_bound(
    chain_lengths: Sequence[int], n_bins: int, m: int
) -> float:
    """Union bound ``P{X_max > m} <= D · P{X > m}`` with the exact tail."""
    return min(1.0, n_bins * one_bin_tail(chain_lengths, n_bins, m))


def expected_max_upper_bound(chain_lengths: Sequence[int], n_bins: int) -> float:
    """Numeric bound on ``E[X_max]`` from equations (3)-(5) with exact tails.

    ``E[X_max] <= T + sum_{m >= T} min(1, D · P{X > m})`` for every cut
    ``T``; the minimum over ``T`` is returned.  Dominates the true
    expectation for any dependent instance, and is tighter than
    :func:`repro.occupancy.gf_expected_max_bound` (which bounds the
    same sum through the saddle-point inequality (13)).
    """
    if n_bins < 1:
        raise ConfigError(f"need at least one bin, got {n_bins}")
    base, pmf = one_bin_pmf(chain_lengths, n_bins)
    max_t = pmf.size - 1  # largest possible random part
    # Tail of the random part: tail[t] = P(X - base > t).
    tail = np.concatenate([np.cumsum(pmf[::-1])[::-1][1:], [0.0]])
    capped = np.minimum(1.0, n_bins * tail)
    # bound(T) = T + sum_{m >= T} capped[m - base]; evaluate all cuts.
    best = float("inf")
    for t_cut in range(0, max_t + 2):
        bound = (base + t_cut) + float(capped[t_cut:].sum())
        best = min(best, bound)
    # E[X_max] is at least the mean load and at most base + max_t.
    total = float(np.asarray(chain_lengths, dtype=np.int64).sum())
    return float(min(max(best, total / n_bins), base + max_t))


def classical_one_bin_pmf(n_balls: int, n_bins: int) -> np.ndarray:
    """Exact Binomial(n_balls, 1/D) pmf — the unit-chain special case."""
    if n_balls < 0 or n_bins < 1:
        raise ConfigError("need n_balls >= 0 and n_bins >= 1")
    _, pmf = one_bin_pmf([1] * n_balls, n_bins)
    return pmf
