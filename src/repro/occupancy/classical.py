"""The classical maximum occupancy problem (paper §7.1, Table 1).

``N_b`` balls are thrown independently and uniformly into ``D`` bins;
``C(N_b, D)`` denotes the expected maximum number of balls in any bin.
The paper estimates the worst-case SRM read overhead per phase as
``v(k, D) = C(kD, D) / k`` by "repeated ball-throwing experiments"
(Table 1) — this module is that estimator, vectorized with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..rng import RngLike, ensure_rng

#: Trials per estimate used by the paper-table reproductions.  The
#: maximum occupancy concentrates tightly, so a few hundred trials give
#: standard errors well below the tables' display precision.
DEFAULT_TRIALS = 400


@dataclass(frozen=True, slots=True)
class OccupancyEstimate:
    """Monte-Carlo estimate of an expected maximum occupancy.

    Attributes
    ----------
    mean:
        Sample mean of the per-trial maximum occupancy.
    std_error:
        Standard error of the mean.
    n_trials:
        Number of independent trials.
    n_balls / n_bins:
        Problem parameters.
    """

    mean: float
    std_error: float
    n_trials: int
    n_balls: int
    n_bins: int

    @property
    def normalized(self) -> float:
        """``mean / (N_b / D)`` — overhead over a perfectly even spread."""
        return self.mean * self.n_bins / self.n_balls


def _validate(n_balls: int, n_bins: int, n_trials: int) -> None:
    if n_balls < 1:
        raise ConfigError(f"need at least one ball, got {n_balls}")
    if n_bins < 1:
        raise ConfigError(f"need at least one bin, got {n_bins}")
    if n_trials < 1:
        raise ConfigError(f"need at least one trial, got {n_trials}")


def max_occupancy_samples(
    n_balls: int,
    n_bins: int,
    n_trials: int = DEFAULT_TRIALS,
    rng: RngLike = None,
    _chunk_cells: int = 8_000_000,
) -> np.ndarray:
    """Sample the maximum bin occupancy of *n_trials* independent throws.

    Each trial throws ``n_balls`` balls uniformly into ``n_bins`` bins
    and records the fullest bin's count.  Trials are generated with
    multinomial sampling (equivalent to per-ball placement but ``O(D)``
    memory per trial) and chunked to bound peak memory.

    Returns
    -------
    int64 array of shape ``(n_trials,)``.
    """
    _validate(n_balls, n_bins, n_trials)
    gen = ensure_rng(rng)
    pvals = np.full(n_bins, 1.0 / n_bins)
    out = np.empty(n_trials, dtype=np.int64)
    trials_per_chunk = max(1, _chunk_cells // n_bins)
    done = 0
    while done < n_trials:
        t = min(trials_per_chunk, n_trials - done)
        counts = gen.multinomial(n_balls, pvals, size=t)
        out[done : done + t] = counts.max(axis=1)
        done += t
    return out


def expected_max_occupancy(
    n_balls: int,
    n_bins: int,
    n_trials: int = DEFAULT_TRIALS,
    rng: RngLike = None,
) -> OccupancyEstimate:
    """Monte-Carlo estimate of ``C(N_b, D)``."""
    samples = max_occupancy_samples(n_balls, n_bins, n_trials, rng)
    return OccupancyEstimate(
        mean=float(samples.mean()),
        std_error=float(samples.std(ddof=1) / np.sqrt(n_trials)) if n_trials > 1 else 0.0,
        n_trials=n_trials,
        n_balls=n_balls,
        n_bins=n_bins,
    )


def overhead_v(
    k: int,
    n_disks: int,
    n_trials: int = DEFAULT_TRIALS,
    rng: RngLike = None,
) -> float:
    """The paper's Table 1 quantity ``v(k, D) = C(kD, D) / k``.

    ``v`` is the multiplicative read overhead of one SRM phase in the
    worst-case-expectation analysis: a phase moves ``R = kD`` blocks and
    costs at most the maximum occupancy of ``kD`` balls in ``D`` bins
    parallel reads, versus the perfect-parallelism cost ``k = R/D``.
    """
    est = expected_max_occupancy(k * n_disks, n_disks, n_trials, rng)
    return est.mean / k
