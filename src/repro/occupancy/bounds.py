"""Analytic occupancy bounds (paper §7.2, Theorem 2).

Two kinds of bounds are provided:

* **Finite-parameter generating-function bound** — the paper's actual
  proof mechanism, valid for every ``(N_b, D)``: from the PGF bound
  ``P{X = m} <= (1 + (P-1)/D)^{N_b} / P^m`` (inequality (13), via the
  residue theorem on a circle of radius ``P = 1 + alpha``), inequality
  (24) gives the smallest tail-cut parameter ``rho`` for a given
  ``alpha``, and ``E[X_max] <= rho* N_b / D + 2`` (inequality (26)).
  We minimize over ``alpha`` numerically instead of plugging the
  paper's case-specific asymptotic choices, so the bound is as tight
  as the technique allows at finite sizes.
* **Asymptotic expansions** — the closed forms of Theorem 2 cases 1
  and 2, which drop the ``O(·)`` terms; they are what the paper quotes
  and what Table-style comparisons use at large ``D``.

Both bound the *dependent* maximum occupancy, hence (Corollary 1) also
the classical one.
"""

from __future__ import annotations

import math

from ..errors import ConfigError


def tail_probability_bound(n_balls: int, n_bins: int, m: int, alpha: float) -> float:
    """Paper inequality (18): ``P{X > m} <= (1 + a/D)^{N_b} / (a (1+a)^m)``.

    ``X`` is the occupancy of one fixed bin.  Valid for any ``alpha > 0``.
    Computed in log space to avoid overflow.
    """
    if alpha <= 0:
        raise ConfigError(f"alpha must be positive, got {alpha}")
    log_p = (
        n_balls * math.log1p(alpha / n_bins)
        - math.log(alpha)
        - m * math.log1p(alpha)
    )
    # A probability bound above 1 carries no information; clamp (and
    # avoid overflow in exp) by capping at 1.
    return math.exp(log_p) if log_p < 0.0 else 1.0


def max_tail_probability_bound(n_balls: int, n_bins: int, m: int, alpha: float | None = None) -> float:
    """Union bound ``P{X_max > m} <= D · P{X > m}``, optimized over alpha.

    When *alpha* is ``None`` a golden-section search picks the tightest
    value for the given ``m``.
    """
    if alpha is not None:
        return min(1.0, n_bins * tail_probability_bound(n_balls, n_bins, m, alpha))

    def objective(log_a: float) -> float:
        a = math.exp(log_a)
        return (
            n_balls * math.log1p(a / n_bins)
            - math.log(a)
            - m * math.log1p(a)
        )

    best = _golden_minimize(objective, -12.0, 12.0)
    return min(1.0, n_bins * math.exp(min(objective(best), 0.0)))


def _rho_for_alpha(n_balls: int, n_bins: int, alpha: float) -> float:
    """RHS of paper inequality (24): the smallest valid ``rho`` at ``alpha``."""
    log1p_a = math.log1p(alpha)
    return (
        n_bins * math.log1p(alpha / n_bins) / log1p_a
        + n_bins * math.log(n_bins) / (n_balls * log1p_a)
        - 2.0 * n_bins * math.log(alpha) / (n_balls * log1p_a)
    )


def _golden_minimize(f, lo: float, hi: float, tol: float = 1e-9) -> float:
    """Golden-section minimum of a unimodal-enough scalar function."""
    invphi = (math.sqrt(5) - 1) / 2
    a, b = lo, hi
    c = b - invphi * (b - a)
    d = a + invphi * (b - a)
    fc, fd = f(c), f(d)
    while abs(b - a) > tol * (1 + abs(a) + abs(b)):
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - invphi * (b - a)
            fc = f(c)
        else:
            a, c, fc = c, d, fd
            d = a + invphi * (b - a)
            fd = f(d)
    return (a + b) / 2


def gf_expected_max_bound(n_balls: int, n_bins: int) -> float:
    """Rigorous finite-size bound ``E[X_max] <= rho* N_b / D + 2``.

    Minimizes inequality (24) over ``alpha`` numerically.  Holds for any
    dependent (hence classical) occupancy instance with ``N_b`` total
    balls and ``D`` bins.
    """
    if n_balls < 1 or n_bins < 1:
        raise ConfigError("need n_balls >= 1 and n_bins >= 1")
    if n_bins == 1:
        return float(n_balls)

    best_log_a = _golden_minimize(
        lambda la: _rho_for_alpha(n_balls, n_bins, math.exp(la)), -12.0, 12.0
    )
    rho = _rho_for_alpha(n_balls, n_bins, math.exp(best_log_a))
    bound = rho * n_balls / n_bins + 2.0
    # E[X_max] can never be below the mean load nor above N_b.
    return float(min(max(bound, n_balls / n_bins), n_balls))


def classical_expected_max_lower_bound(n_balls: int, n_bins: int) -> float:
    """Rigorous lower bound on the classical ``C(N_b, D)``.

    The paper notes its techniques "can be modified" to produce lower
    bounds; this is the Chung–Erdős route.  With ``X_i`` the occupancy
    of bin ``i`` (Binomial(N_b, 1/D)), ``A_i = {X_i >= m}`` and
    ``p_m = P{X >= m}``:

        P{max >= m} = P{union A_i}
                   >= (sum p)^2 / (sum p + sum_{i != j} P{A_i ∩ A_j})
                   >= (D p_m)^2 / (D p_m + D(D-1) p_m^2)
                    = D p_m / (1 + (D-1) p_m),

    using the negative association of multinomial occupancies (joint
    exceedance at most the independent product).  Summing over
    ``m >= 1`` lower-bounds ``E[max]``.
    """
    if n_balls < 1 or n_bins < 1:
        raise ConfigError("need n_balls >= 1 and n_bins >= 1")
    if n_bins == 1:
        return float(n_balls)
    from .pgf import classical_one_bin_pmf

    pmf = classical_one_bin_pmf(n_balls, n_bins)
    # p_m = P(X >= m) for m = 1..n_balls.
    suffix = pmf[::-1].cumsum()[::-1]
    total = 0.0
    for m in range(1, n_balls + 1):
        p = float(suffix[m]) if m < suffix.size else 0.0
        if p > 0.0:
            total += n_bins * p / (1.0 + (n_bins - 1) * p)
    # E[max] >= mean load always.
    return float(max(total, n_balls / n_bins))


def theorem2_case1_bound(k: float, n_bins: int) -> float:
    """Theorem 2 case 1 leading terms (``N_b = kD``, constant ``k``).

    ``E[X_max] <= (ln D / ln ln D) (1 + lnlnln D/lnln D + (1+ln k)/lnln D)``
    with the ``O((lnlnln D / lnln D)^2)`` term dropped.  Only meaningful
    when ``ln ln D > 0`` i.e. ``D > e``; asymptotic in ``D``.
    """
    if n_bins <= 3:
        raise ConfigError("case-1 expansion requires D > e (ln ln D > 0)")
    if k <= 0:
        raise ConfigError(f"k must be positive, got {k}")
    ln_d = math.log(n_bins)
    lnln_d = math.log(ln_d)
    lnlnln_d = math.log(lnln_d) if lnln_d > 1e-12 else float("-inf")
    correction = 1.0 + lnlnln_d / lnln_d + (1.0 + math.log(k)) / lnln_d
    return ln_d / lnln_d * correction


def theorem2_case2_bound(r: float, n_bins: int) -> float:
    """Theorem 2 case 2 leading terms (``N_b = r D ln D``).

    ``E[X_max] <= (1 + sqrt(2/r) + ln r / (sqrt(2r) ln D)) N_b / D``
    with the ``O(1/r + ...)`` terms dropped.  Approaches ``N_b/D`` —
    perfect balance — as ``r`` grows, which is the optimality regime
    ``M = Omega(DB log D)`` of Theorem 1 case 3.
    """
    if r <= 0:
        raise ConfigError(f"r must be positive, got {r}")
    if n_bins < 2:
        raise ConfigError("case-2 expansion requires D >= 2")
    n_balls = r * n_bins * math.log(n_bins)
    factor = 1.0 + math.sqrt(2.0 / r) + math.log(r) / (math.sqrt(2.0 * r) * math.log(n_bins))
    return factor * n_balls / n_bins
