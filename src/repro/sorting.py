"""Top-level convenience API: one call, sensible defaults.

For users who just want to external-sort an array under a memory budget
without hand-building configurations::

    from repro import external_sort

    out, stats = external_sort(keys, memory_records=1 << 16, n_disks=8,
                               block_size=256)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .baselines.dsm import dsm_sort
from .core.config import DSMConfig, SRMConfig
from .core.layout import LayoutStrategy
from .core.mergesort import srm_sort
from .errors import ConfigError
from .rng import RngLike


@dataclass(frozen=True, slots=True)
class ExternalSortStats:
    """Algorithm-independent summary of an external sort."""

    algorithm: str
    n_records: int
    merge_order: int
    runs_formed: int
    merge_passes: int
    parallel_reads: int
    parallel_writes: int

    @property
    def parallel_ios(self) -> int:
        return self.parallel_reads + self.parallel_writes


def external_sort(
    keys: np.ndarray,
    memory_records: int,
    n_disks: int,
    block_size: int,
    algorithm: str = "srm",
    rng: RngLike = None,
    formation: str = "load_sort",
) -> tuple[np.ndarray, ExternalSortStats]:
    """Sort *keys* on a simulated ``n_disks``-disk system.

    Parameters
    ----------
    memory_records:
        Internal memory budget ``M`` in records; the merge order is
        derived from it (``(M/B - 4D)/(2 + D/B)`` for SRM,
        ``(M/B - 2D)/2D`` for DSM).
    algorithm:
        ``"srm"`` (the paper's algorithm) or ``"dsm"`` (the baseline).
    formation:
        Run-formation method, SRM only (``"load_sort"`` or
        ``"replacement_selection"``).

    Returns the sorted array and an :class:`ExternalSortStats` summary.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return keys.copy(), ExternalSortStats(
            algorithm=algorithm, n_records=0, merge_order=0, runs_formed=0,
            merge_passes=0, parallel_reads=0, parallel_writes=0,
        )
    if algorithm == "srm":
        cfg = SRMConfig.from_memory(memory_records, n_disks, block_size)
        out, res = srm_sort(
            keys,
            cfg,
            strategy=LayoutStrategy.RANDOMIZED,
            rng=rng,
            run_length=memory_records,
            formation=formation,
        )
    elif algorithm == "dsm":
        if formation != "load_sort":
            raise ConfigError("DSM supports only load_sort run formation")
        cfg = DSMConfig.from_memory(memory_records, n_disks, block_size)
        out, res = dsm_sort(keys, cfg, run_length=memory_records)
    else:
        raise ConfigError(f"unknown algorithm {algorithm!r} (srm or dsm)")
    stats = ExternalSortStats(
        algorithm=algorithm,
        n_records=int(keys.size),
        merge_order=cfg.merge_order,
        runs_formed=res.runs_formed,
        merge_passes=res.n_merge_passes,
        parallel_reads=res.io.parallel_reads,
        parallel_writes=res.io.parallel_writes,
    )
    return out, stats


def external_sort_records(
    keys: np.ndarray,
    payloads: np.ndarray,
    memory_records: int,
    n_disks: int,
    block_size: int,
    algorithm: str = "srm",
    rng: RngLike = None,
) -> tuple[np.ndarray, np.ndarray, ExternalSortStats]:
    """Sort ``(key, payload)`` records; payloads travel with their keys.

    Returns ``(sorted_keys, payloads_in_key_order, stats)``.  With the
    default ``"srm"`` algorithm and load-sort run formation the sort is
    **stable**: records with equal keys keep their input order (runs are
    formed in input order, internal sorts are stable, and the merge
    breaks key ties by ascending run id).
    """
    keys = np.asarray(keys, dtype=np.int64)
    payloads = np.asarray(payloads, dtype=np.int64)
    if payloads.shape != keys.shape:
        raise ConfigError("payloads must align with keys")
    if keys.size == 0:
        return keys.copy(), payloads.copy(), ExternalSortStats(
            algorithm=algorithm, n_records=0, merge_order=0, runs_formed=0,
            merge_passes=0, parallel_reads=0, parallel_writes=0,
        )
    if algorithm == "srm":
        cfg = SRMConfig.from_memory(memory_records, n_disks, block_size)
        _, res = srm_sort(
            keys, cfg, rng=rng, run_length=memory_records, payloads=payloads
        )
    elif algorithm == "dsm":
        cfg = DSMConfig.from_memory(memory_records, n_disks, block_size)
        _, res = dsm_sort(keys, cfg, run_length=memory_records, payloads=payloads)
    else:
        raise ConfigError(f"unknown algorithm {algorithm!r} (srm or dsm)")
    out_keys, out_pay = res.peek_sorted_records()
    stats = ExternalSortStats(
        algorithm=algorithm,
        n_records=int(keys.size),
        merge_order=cfg.merge_order,
        runs_formed=res.runs_formed,
        merge_passes=res.n_merge_passes,
        parallel_reads=res.io.parallel_reads,
        parallel_writes=res.io.parallel_writes,
    )
    return out_keys, out_pay, stats
