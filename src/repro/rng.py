"""Seeded random-number helpers.

Every randomized component in this library accepts either a seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy) and
normalizes it through :func:`ensure_rng`.  Experiments therefore
regenerate bit-identically for a fixed seed, which the benchmark harness
relies on.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Things acceptable wherever randomness is consumed.
RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Normalize *rng* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or
        an existing ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators.

    Useful for running a parameter grid where each cell must be
    reproducible independently of grid iteration order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
