"""Why randomize?  Layout strategies under an adversarial workload.

Section 3 of the paper: with deterministic run placement, an adversary
can arrange for the R leading blocks to pile onto one disk, driving I/O
throughput toward 1/D of optimal.  Randomizing each run's starting disk
defeats this.  This example merges the same adversarial runs (perfectly
interleaved, so all runs deplete in lockstep) under every layout
strategy and reports the measured read overhead.

Run with::

    python examples/adversarial_layouts.py
"""

from __future__ import annotations

import numpy as np

from repro.core import LayoutStrategy, MergeJob, simulate_merge
from repro.workloads import interleaved_runs, random_partition_runs


def measure(runs, B, D, strategy, seed=0):
    job = MergeJob.from_key_runs(runs, B, D, strategy=strategy, rng=seed)
    stats = simulate_merge(job)
    return stats


def main() -> None:
    D, B = 8, 8
    R = 2 * D          # k = 2: tight memory, where layout matters most
    blocks_per_run = 64

    print(f"R = {R} runs, D = {D} disks, {blocks_per_run} blocks/run\n")

    workloads = {
        "adversarial (lockstep runs)": interleaved_runs(R, blocks_per_run * B),
        "average-case (random partition)": random_partition_runs(
            R, blocks_per_run * B, rng=7
        ),
    }
    for wname, runs in workloads.items():
        print(f"--- workload: {wname} ---")
        print(f"{'layout':<14} {'reads':>7} {'v':>7} {'flushed blocks':>15}")
        for strategy in LayoutStrategy:
            stats = measure(runs, B, D, strategy)
            print(f"{strategy.value:<14} {stats.total_reads:>7} "
                  f"{stats.overhead_v:>7.2f} {stats.blocks_flushed:>15}")
        print()

    print("WORST_CASE (all runs start on disk 0) on the lockstep workload is")
    print("the paper's §3 adversary: every phase's blocks sit on one disk, so")
    print("reads serialize and flushing churns.  RANDOMIZED stays near v = 1")
    print("on both workloads — that is SRM's whole trick.")


if __name__ == "__main__":
    main()
