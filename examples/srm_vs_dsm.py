"""SRM vs DSM: the paper's §9 comparison, executed end-to-end.

Both algorithms sort the same data with the same amount of internal
memory on identical simulated disk systems; we sweep the number of
disks D and report parallel I/O counts, pass counts, and the measured
ratio against the paper's C_SRM/C_DSM prediction.

Run with::

    python examples/srm_vs_dsm.py
"""

from __future__ import annotations

import numpy as np

from repro import DSMConfig, SRMConfig, dsm_sort, srm_sort
from repro.analysis import c_ratio


def compare(n_records: int, k: int, n_disks: int, block_size: int, seed: int = 1):
    keys = np.random.default_rng(seed).permutation(n_records)
    srm_cfg = SRMConfig.from_k(k, n_disks, block_size)
    dsm_cfg = DSMConfig.matching_srm(srm_cfg)
    # Short initial runs so several merge passes happen and the
    # merge-order difference matters (the paper's regime N >> M).
    run_length = 8 * n_disks * block_size

    srm_out, srm = srm_sort(keys, srm_cfg, rng=seed, run_length=run_length)
    dsm_out, dsm = dsm_sort(keys, dsm_cfg, run_length=run_length)
    assert np.array_equal(srm_out, dsm_out)

    # Average measured per-pass read overhead v across SRM's merges.
    v = float(np.mean([s.overhead_v for s in srm.merge_schedules]))
    predicted = c_ratio(k, n_disks, block_size, max(v, 1.0))
    measured = srm.io.parallel_ios / dsm.io.parallel_ios
    return srm, dsm, v, predicted, measured


def main() -> None:
    n_records = 120_000
    k, block_size = 4, 16
    print(f"N = {n_records}, k = {k}, B = {block_size}; same memory for both\n")
    header = (f"{'D':>4} {'R_SRM':>6} {'R_DSM':>6} {'SRM passes':>11} "
              f"{'DSM passes':>11} {'SRM I/Os':>9} {'DSM I/Os':>9} "
              f"{'measured':>9} {'C-ratio':>8}")
    print(header)
    for D in (2, 4, 8, 16):
        srm, dsm, v, predicted, measured = compare(n_records, k, D, block_size)
        print(f"{D:>4} {srm.config.merge_order:>6} {dsm.config.merge_order:>6} "
              f"{srm.n_merge_passes:>11} {dsm.n_merge_passes:>11} "
              f"{srm.io.parallel_ios:>9} {dsm.io.parallel_ios:>9} "
              f"{measured:>9.2f} {predicted:>8.2f}")
    print("\nmeasured < 1 means SRM used fewer parallel I/Os than DSM.")
    print("C-ratio is the paper's asymptotic prediction (eqs. 40-41); the")
    print("measured ratio sits above it at this small N because both share")
    print("the fixed run-formation cost the ratio ignores.")


if __name__ == "__main__":
    main()
