"""Paper-scale study: SRM vs DSM across file sizes, simulated exactly.

The full-sort simulator replays SRM's exact I/O schedule without moving
records, and the DSM cost model counts the baseline's deterministic
schedule in closed form — so sorting hundreds of millions of records'
worth of I/O schedule takes seconds.  This example sweeps N on the §10
"realistic workstation" (D = 10 disks, B = 100-record blocks, tight
memory so several passes occur) and prints the SRM/DSM ratio as the
pass structure shifts.

Run with::

    python examples/paper_scale_study.py
"""

from __future__ import annotations

from repro.baselines import dsm_exact_cost
from repro.core import DSMConfig, SRMConfig, simulate_mergesort


def main() -> None:
    D, B, k = 10, 100, 10
    srm_cfg = SRMConfig.from_k(k, D, B)
    dsm_cfg = DSMConfig.matching_srm(srm_cfg)
    M = srm_cfg.memory_records

    print(f"D = {D}, B = {B}, k = {k}: memory M = {M:,} records")
    print(f"SRM merge order R = {srm_cfg.merge_order}, "
          f"DSM merge order = {dsm_cfg.merge_order}\n")
    header = (f"{'N (records)':>12} {'runs':>6} {'SRM passes':>11} "
              f"{'DSM passes':>11} {'SRM I/Os':>10} {'DSM I/Os':>10} "
              f"{'ratio':>6} {'v':>6}")
    print(header)

    for n in (200_000, 1_000_000, 4_000_000, 16_000_000):
        sim = simulate_mergesort(n, srm_cfg, run_length=M, rng=1)
        dsm = dsm_exact_cost(n, M, dsm_cfg)
        ratio = sim.parallel_ios / dsm.parallel_ios
        print(f"{n:>12,} {sim.runs_formed:>6} {sim.n_merge_passes:>11} "
              f"{dsm.n_merge_passes:>11} {sim.parallel_ios:>10,} "
              f"{dsm.parallel_ios:>10,} {ratio:>6.2f} "
              f"{sim.mean_overhead_v:>6.3f}")

    print("\nThe ratio drops each time DSM needs a pass SRM does not; once")
    print("merges are non-trivial, SRM's measured per-merge overhead v sits")
    print("within a few percent of 1 — the Table 3 story at full-sort scale.")
    print("(At N = 200k only 8 runs exist: merging fewer runs than disks is")
    print("the k < 1 corner where SRM has no room to win — and the paper's")
    print("§10 point is precisely that real machines sit at k >> 1.)")


if __name__ == "__main__":
    main()
