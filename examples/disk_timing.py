"""Wall-clock view: the timing model and I/O-compute overlap.

The paper counts parallel I/O operations; this example attaches the
Ruemmler-Wilkes-style service-time model to show what those counts mean
in (simulated) milliseconds on a 1996-era disk farm, and how SRM's
prefetching (Lemma 1's guarantee that reads can be issued early) buys
overlap headroom.

Run with::

    python examples/disk_timing.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MergeJob, SRMConfig, simulate_merge, srm_mergesort
from repro.disks import DISK_1996, DISK_MODERN, ParallelDiskSystem, StripedFile
from repro.workloads import random_partition_runs


def timed_sort(timing, n=100_000, D=8, B=64, k=4, seed=0):
    cfg = SRMConfig.from_k(k, D, B)
    system = ParallelDiskSystem(D, B, timing=timing)
    keys = np.random.default_rng(seed).permutation(n)
    infile = StripedFile.from_records(system, keys)
    res = srm_mergesort(system, infile, cfg, rng=1)
    return res, system.elapsed_ms


def main() -> None:
    print("=== SRM sort wall time under two disk generations ===")
    for name, model in [("1996 drive", DISK_1996), ("modern drive", DISK_MODERN)]:
        res, ms = timed_sort(model)
        print(f"  {name:<13}: {res.io.parallel_ios:>6} parallel I/Os "
              f"-> {ms/1000:>7.2f} s simulated "
              f"({model.op_time_ms(64):.2f} ms/op)")

    print("\n=== Prefetch headroom (demand vs eager reads) ===")
    D, B = 8, 16
    runs = random_partition_runs(4 * D, 80 * B, rng=5)
    job = MergeJob.from_key_runs(runs, B, D, rng=6)
    demand = simulate_merge(job, prefetch=False)
    eager = simulate_merge(job, prefetch=True)
    print(f"  demand-paced reads: {demand.total_reads:>6} "
          f"(v = {demand.overhead_v:.3f})")
    print(f"  eager prefetching : {eager.total_reads:>6} "
          f"(v = {eager.overhead_v:.3f})")
    print("\nEager mode issues the same reads earlier (case 2a of §5.5), so")
    print("the I/O count stays essentially unchanged while reads can overlap")
    print("internal merging — the property the paper highlights after Lemma 1.")


if __name__ == "__main__":
    main()
