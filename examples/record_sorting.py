"""Sorting real records: keys with payloads, stably.

The paper sorts "records" identified by keys; a practical library must
carry the rest of the record along.  Here payloads are int64 handles
(row ids into an external table, offsets into a blob store, ...) that
travel with their keys through run formation, every merge pass, and the
final output — and the sort is *stable*: ties keep input order.

Run with::

    python examples/record_sorting.py
"""

from __future__ import annotations

import numpy as np

from repro import external_sort_records


def main() -> None:
    rng = np.random.default_rng(7)
    n = 50_000

    # An "orders" table: timestamps with heavy duplication (many orders
    # per second) and a payload handle pointing at the full row.
    timestamps = rng.integers(0, 5000, size=n)
    row_ids = np.arange(n)

    out_ts, out_rows, stats = external_sort_records(
        timestamps, row_ids,
        memory_records=4096, n_disks=8, block_size=64, rng=1,
    )

    print(f"sorted {stats.n_records} records "
          f"(R={stats.merge_order}, {stats.merge_passes} merge passes, "
          f"{stats.parallel_ios} parallel I/Os)")

    # Verify: payloads landed next to their keys...
    assert np.array_equal(out_ts, np.sort(timestamps))
    assert np.array_equal(timestamps[out_rows], out_ts)
    # ...and equal keys kept their input order (stability).
    expect = np.argsort(timestamps, kind="stable")
    assert np.array_equal(out_rows, expect)
    print("payload integrity and stability verified:")
    print(f"  first records: ts={out_ts[:6].tolist()} rows={out_rows[:6].tolist()}")

    dup = int(np.bincount(timestamps).max())
    print(f"  heaviest timestamp repeats {dup}x — all kept in arrival order")


if __name__ == "__main__":
    main()
