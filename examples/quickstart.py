"""Quickstart: sort records with SRM on a simulated parallel disk system.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import SRMConfig, srm_sort
from repro.verify import assert_sorted_permutation


def main() -> None:
    # A machine with D = 4 independent disks, blocks of B = 64 records,
    # and enough memory to merge R = kD = 16 runs at a time.
    config = SRMConfig.from_k(k=4, n_disks=4, block_size=64)
    print(f"config: D={config.n_disks}, B={config.block_size}, "
          f"R={config.merge_order}, memory={config.memory_records} records")

    # 200k records in random order.
    keys = np.random.default_rng(0).permutation(200_000)

    # Sort.  `rng` seeds SRM's only randomness: the starting disk of
    # each run.  `validate=True` turns on the scheduler's internal
    # invariant checks (Lemma 1, never-flush-leading, buffer budgets).
    sorted_keys, result = srm_sort(keys, config, rng=1, validate=True)

    assert_sorted_permutation(sorted_keys, keys)
    print(f"\nsorted {result.n_records} records:")
    print(f"  initial runs formed : {result.runs_formed}")
    print(f"  merge passes        : {result.n_merge_passes}")
    print(f"  parallel reads      : {result.io.parallel_reads}")
    print(f"  parallel writes     : {result.io.parallel_writes}")
    print(f"  write efficiency    : {result.io.write_efficiency:.3f} "
          f"(1.0 = perfect write parallelism)")

    # Per-merge scheduler detail: the measured overhead v of each merge
    # (Tables 1/3's quantity) and how much flushing actually happened.
    print("\nper-merge schedules:")
    for i, sched in enumerate(result.merge_schedules):
        print(f"  merge {i}: v={sched.overhead_v:.3f}, "
              f"I_0={sched.initial_reads}, flushed={sched.blocks_flushed} blocks")


if __name__ == "__main__":
    main()
