"""Domain scenario: sorting nearly-ordered log records.

External sorting's classic consumer is log/ETL processing, where input
arrives *almost* in timestamp order.  Replacement selection (paper
§2.1) exploits that: runs grow far beyond memory size — in the limit a
single run — skipping merge passes entirely.  This example sorts the
same "log file" three ways and compares total parallel I/Os:

* SRM with memory-load run formation,
* SRM with replacement-selection run formation,
* the DSM baseline.

Run with::

    python examples/log_sorting.py
"""

from __future__ import annotations

import numpy as np

from repro import DSMConfig, SRMConfig, dsm_sort, srm_sort
from repro.workloads import nearly_sorted, uniform_permutation
from repro.verify import assert_sorted_permutation


def sort_three_ways(keys: np.ndarray, k: int, D: int, B: int, run_length: int):
    srm_cfg = SRMConfig.from_k(k, D, B)
    dsm_cfg = DSMConfig.matching_srm(srm_cfg)
    rows = []
    out, res = srm_sort(keys, srm_cfg, rng=1, run_length=run_length)
    assert_sorted_permutation(out, keys)
    rows.append(("SRM + load-sort runs", res.runs_formed, res.n_merge_passes,
                 res.io.parallel_ios))
    out, res = srm_sort(keys, srm_cfg, rng=1, run_length=run_length,
                        formation="replacement_selection")
    assert_sorted_permutation(out, keys)
    rows.append(("SRM + replacement sel.", res.runs_formed, res.n_merge_passes,
                 res.io.parallel_ios))
    out, res = dsm_sort(keys, dsm_cfg, run_length=run_length)
    assert_sorted_permutation(out, keys)
    rows.append(("DSM + load-sort runs", res.runs_formed, res.n_merge_passes,
                 res.io.parallel_ios))
    return rows


def report(title: str, rows) -> None:
    print(f"--- {title} ---")
    print(f"{'method':<24} {'runs':>6} {'passes':>7} {'parallel I/Os':>14}")
    for name, runs, passes, ios in rows:
        print(f"{name:<24} {runs:>6} {passes:>7} {ios:>14}")
    print()


def main() -> None:
    n = 60_000
    k, D, B = 3, 4, 16
    run_length = 16 * D * B  # deliberately small memory: many runs

    print(f"N = {n}, D = {D}, B = {B}, memory-load = {run_length} records\n")

    # A log file: timestamps that are 2% locally shuffled.
    logs = nearly_sorted(n, swap_fraction=0.02, rng=3)
    report("nearly-sorted log records", sort_three_ways(logs, k, D, B, run_length))

    # The same volume of completely random records, for contrast.
    rand = uniform_permutation(n, rng=4)
    report("uniform random records", sort_three_ways(rand, k, D, B, run_length))

    print("On nearly-sorted data replacement selection collapses the input")
    print("to a handful of giant runs, eliminating merge passes; on random")
    print("data it still halves the run count (expected run length 2M).")


if __name__ == "__main__":
    main()
