"""Operational tooling: I/O traces, run scanning, and the one-call API.

Shows the "daily driver" surface of the library beyond the paper's
experiments: attach a trace to see per-disk balance, scan a sorted run
with bounded memory, and use `external_sort` when you just want the
answer.

Run with::

    python examples/io_tracing.py
"""

from __future__ import annotations

import numpy as np

from repro import SRMConfig, external_sort
from repro.core import LayoutStrategy, srm_mergesort
from repro.disks import IOTrace, ParallelDiskSystem, RunScanner, StripedFile


def traced_sort(strategy: LayoutStrategy, seed: int = 0):
    cfg = SRMConfig.from_k(2, 8, 16)
    system = ParallelDiskSystem(8, 16)
    system.trace = IOTrace()
    keys = np.random.default_rng(seed).permutation(40_000)
    infile = StripedFile.from_records(system, keys)
    result = srm_mergesort(system, infile, cfg, strategy=strategy, rng=1,
                           run_length=512)
    return system, result


def main() -> None:
    print("=== I/O traces: randomized vs adversarial layout ===")
    for strategy in (LayoutStrategy.RANDOMIZED, LayoutStrategy.WORST_CASE):
        system, result = traced_sort(strategy)
        trace = system.trace
        util = trace.utilization(8, "read")
        print(f"\n{strategy.value}:")
        print(f"  {trace.summary(8)}")
        print(f"  per-disk read utilization: "
              f"{np.array2string(util, precision=2, floatmode='fixed')}")

    print("\n=== Bounded-memory scan of the sorted output ===")
    system, result = traced_sort(LayoutStrategy.RANDOMIZED)
    system.stats.reset()
    scanner = RunScanner(system, result.output)
    running_max = None
    chunks = 0
    while not scanner.exhausted:
        chunk = scanner.next_chunk()
        assert running_max is None or chunk[0] >= running_max
        running_max = int(chunk[-1])
        chunks += 1
    print(f"  scanned {result.output.n_records} records in {chunks} chunks, "
          f"{system.stats.parallel_reads} parallel reads "
          f"(efficiency {system.stats.read_efficiency:.2f})")

    print("\n=== One-call API ===")
    keys = np.random.default_rng(5).permutation(30_000)
    out, stats = external_sort(keys, memory_records=2000, n_disks=8,
                               block_size=16, rng=2)
    assert np.array_equal(out, np.sort(keys))
    print(f"  external_sort: {stats.n_records} records, R={stats.merge_order}, "
          f"{stats.merge_passes} passes, {stats.parallel_ios} parallel I/Os")


if __name__ == "__main__":
    main()
