"""Sorting more data than fits in RAM with the mmap storage backend.

The default scale is small so the example runs in seconds; set
``REPRO_OOC_RECORDS`` to scale it up.  Past ``BIG`` records the example
switches to a fully streaming pipeline — the input is generated
chunk-wise into a scratch memmap, the sort runs on the mmap backend,
and the output is verified with a bounded-memory ``RunScanner`` — and
then **enforces** the out-of-core claim by capping the process's
anonymous memory (``RLIMIT_DATA``) far below the input size before
sorting.  A multi-GB run completing under that cap is the proof that
the working set is the merge buffers, not the data:

    REPRO_OOC_RECORDS=500000000 python examples/out_of_core_sorting.py

sorts 4 GB of keys under a 1.5 GB heap limit.  ``REPRO_OOC_WORKERS=4``
additionally drains each merge through the process-parallel Merge Path
plane (bit- and schedule-identical to the serial loser tree;
wall-clock gains need real cores).
"""

import os
import resource
import tempfile
import time

import numpy as np

from repro import SRMConfig, srm_sort
from repro.verify import is_sorted

N = int(os.environ.get("REPRO_OOC_RECORDS", 400_000))
WORKERS = int(os.environ.get("REPRO_OOC_WORKERS", "1"))
#: Streaming mode threshold and its anonymous-memory cap.
BIG = 10_000_000
HEAP_CAP = int(os.environ.get("REPRO_OOC_HEAP_CAP", 1_500_000_000))

merge_workers = WORKERS if WORKERS > 1 else None
input_bytes = N * 8


def small_demo() -> None:
    """The plain API path: everything in arrays, storage on files."""
    cfg = SRMConfig.from_k(k=8, n_disks=8, block_size=1024)
    rng = np.random.default_rng(7)
    keys = rng.integers(-(2**62), 2**62, N)
    t0 = time.perf_counter()
    out, res = srm_sort(keys, cfg, rng=1, backend="mmap",
                        merge_workers=merge_workers)
    wall = time.perf_counter() - t0
    assert is_sorted(out)
    stats = res.system.backend.stats()
    peak_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    print(f"records sorted      {N:>14,}  ({input_bytes / 1e6:,.0f} MB of keys)")
    print(f"wall clock          {wall:>14.2f}s  ({N / wall:,.0f} records/s)")
    print(f"merge passes        {res.n_merge_passes:>14}")
    print(f"parallel I/Os       {res.total_parallel_ios:>14,}")
    print(f"backend file bytes  {stats['file_bytes']:>14,}"
          f"  ({stats['blocks_written']:,} blocks written)")
    print(f"peak RSS            {peak_rss:>14,}")
    res.system.close()
    print("ok: output sorted, storage out of core")


def big_demo() -> None:
    """Streaming pipeline under an enforced anonymous-memory cap."""
    from repro.core.mergesort import srm_mergesort
    from repro.disks import ParallelDiskSystem, RunScanner
    from repro.disks.files import StripedFile

    cfg = SRMConfig.from_k(k=8, n_disks=8, block_size=4096)
    # Shared file mappings (the backend's disk files, the scratch input)
    # are exempt from RLIMIT_DATA, so the cap constrains exactly what
    # must stay small: heap allocations — merge buffers, the writer
    # ring, sort temporaries.  An out-of-cap sort dies with MemoryError.
    enforced = input_bytes > HEAP_CAP
    if enforced:
        resource.setrlimit(resource.RLIMIT_DATA, (HEAP_CAP, HEAP_CAP))

    with ParallelDiskSystem(cfg.n_disks, cfg.block_size,
                            backend="mmap") as system:
        rng = np.random.default_rng(7)
        t0 = time.perf_counter()
        with tempfile.NamedTemporaryFile(prefix="ooc-input-",
                                         suffix=".dat") as f:
            scratch = np.memmap(f.name, dtype=np.int64, mode="w+", shape=(N,))
            chunk = 4_000_000
            for i in range(0, N, chunk):
                j = min(i + chunk, N)
                scratch[i:j] = rng.integers(-(2**62), 2**62, j - i)
            infile = StripedFile.from_records(system, scratch)
            del scratch
        gen_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        res = srm_mergesort(system, infile, cfg, rng=1,
                            merge_workers=merge_workers)
        sort_s = time.perf_counter() - t0

        # Bounded-memory verification: one stripe of blocks at a time.
        t0 = time.perf_counter()
        scanner = RunScanner(system, res.output, free=True)
        prev = None
        total = 0
        while not scanner.exhausted:
            keys = scanner.next_chunk()
            if prev is not None and keys[0] < prev:
                raise AssertionError("output not sorted across chunks")
            if np.any(keys[1:] < keys[:-1]):
                raise AssertionError("output not sorted within a chunk")
            prev = int(keys[-1])
            total += int(keys.size)
        assert total == N
        verify_s = time.perf_counter() - t0
        stats = system.backend.stats()

    peak_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    cap_note = "enforced" if enforced else "unenforced: input under cap"
    print(f"records sorted      {N:>14,}  ({input_bytes / 1e9:.1f} GB of keys)")
    print(f"heap cap ({cap_note}) {HEAP_CAP:,}")
    print(f"generate            {gen_s:>14.1f}s")
    print(f"sort                {sort_s:>14.1f}s  ({N / sort_s:,.0f} records/s)")
    print(f"verify (streaming)  {verify_s:>14.1f}s")
    print(f"merge passes        {res.n_merge_passes:>14}")
    print(f"parallel I/Os       {res.total_parallel_ios:>14,}")
    print(f"backend file bytes  {stats['file_bytes']:>14,}")
    print(f"peak RSS            {peak_rss:>14,}  "
          "(mostly reclaimable shared file pages)")
    if enforced:
        print("ok: sorted under a heap cap the input could never fit in")
    else:
        print("ok: streamed sort verified (raise REPRO_OOC_RECORDS past "
              "the cap for an enforced run)")


if __name__ == "__main__":
    big_demo() if N >= BIG else small_demo()
