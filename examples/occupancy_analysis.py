"""Occupancy analysis: simulation vs exact values vs Theorem 2 bounds.

Reproduces the paper's analytical machinery at small and large scale:

* exact expected maxima (truncated-EGF / enumeration) for tiny cases,
* Monte-Carlo estimates of classical and dependent maxima,
* the finite-size generating-function bound (inequality (24)-(26)),
* the §7.2 conjecture that dependence only helps.

Run with::

    python examples/occupancy_analysis.py
"""

from __future__ import annotations

from repro.occupancy import (
    exact_classical_expected_max,
    exact_dependent_expected_max,
    expected_dependent_max_occupancy,
    expected_max_occupancy,
    gf_expected_max_bound,
    theorem2_case2_bound,
)


def small_scale() -> None:
    print("=== Small instances: exact vs Monte-Carlo ===")
    print(f"{'instance':<34} {'exact':>8} {'MC':>8} {'GF bound':>9}")
    cases = [
        ("12 balls, 4 bins (classical)", None, 12, 4),
        ("chains [4,3,2,2,1], 4 bins", [4, 3, 2, 2, 1], 12, 4),
        ("30 balls, 5 bins (classical)", None, 30, 5),
        ("chains [6]*5, 5 bins", [6] * 5, 30, 5),
    ]
    for label, chains, n_balls, d in cases:
        if chains is None:
            exact = float(exact_classical_expected_max(n_balls, d))
            mc = expected_max_occupancy(n_balls, d, n_trials=20_000, rng=1).mean
        else:
            exact = float(exact_dependent_expected_max(chains, d))
            mc = expected_dependent_max_occupancy(chains, d, n_trials=20_000, rng=1).mean
        bound = gf_expected_max_bound(n_balls, d)
        print(f"{label:<34} {exact:>8.4f} {mc:>8.4f} {bound:>9.2f}")


def conjecture() -> None:
    print("\n=== §7.2 conjecture: dependent <= classical (exact) ===")
    for chains, d in [([2, 2, 2], 3), ([3, 1, 2, 2], 4), ([4, 4], 4)]:
        n_balls = sum(chains)
        dep = float(exact_dependent_expected_max(chains, d))
        cla = float(exact_classical_expected_max(n_balls, d))
        mark = "<=" if dep <= cla else "> (!!)"
        print(f"  chains {chains} in {d} bins: dependent {dep:.4f} {mark} classical {cla:.4f}")


def srm_regime() -> None:
    print("\n=== SRM's operating points: v(k, D) and the bounds ===")
    print(f"{'k':>5} {'D':>5} {'MC v':>8} {'GF-bound v':>11} {'Thm2-c2 v':>10}")
    import math

    for k, d in [(5, 50), (20, 50), (100, 50), (100, 1000)]:
        est = expected_max_occupancy(k * d, d, n_trials=2000, rng=2)
        v_mc = est.mean / k
        v_gf = gf_expected_max_bound(k * d, d) / k
        r = k / math.log(d)  # N_b = kD = rD ln D
        v_t2 = theorem2_case2_bound(r, d) / k
        print(f"{k:>5} {d:>5} {v_mc:>8.3f} {v_gf:>11.3f} {v_t2:>10.3f}")
    print("\nv -> 1 as k grows: with many blocks per disk the random")
    print("placement balances itself — why SRM is near-optimal in practice (§10).")


if __name__ == "__main__":
    small_scale()
    conjecture()
    srm_regime()
